"""Hypothesis stateful (model-based) tests for the engine's data structures.

The spillable queue, the remote vertex cache, and the task-lease table
sit under every task the engine moves; these machines compare them
against trivially-correct in-memory models under arbitrary operation
interleavings.
"""

import tempfile
from dataclasses import dataclass

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.gthinker.runtime import WorkLedger
from repro.gthinker.scheduler import TaskLeaseTable
from repro.gthinker.spill import SpillableQueue, SpillFileList
from repro.gthinker.task import Task
from repro.gthinker.vertex_store import RemoteVertexCache


class SpillableQueueMachine(RuleBasedStateMachine):
    """Model: the queue + its spill files behave like one FIFO list.

    Subtlety encoded by the model: a push that overflows capacity spills
    the batch at the *tail* (newest work) to disk, and a refill loads the
    most recent file back to the *front*. We model the exact task-id
    sequence the structure must eventually yield.
    """

    def __init__(self):
        super().__init__()
        self.dir = tempfile.mkdtemp(prefix="hypq-")
        self.spill = SpillFileList(self.dir, "hyp")
        self.capacity = 6
        self.batch = 2
        self.queue = SpillableQueue(self.capacity, self.batch, self.spill)
        self.model_mem: list[int] = []  # in-memory ids, front first
        self.model_disk: list[list[int]] = []  # spilled batches, oldest first
        self.next_id = 0

    @rule()
    def push(self):
        if len(self.model_mem) >= self.capacity:
            batch = self.model_mem[-self.batch :]
            del self.model_mem[-self.batch :]
            self.model_disk.append(batch)
        task = Task(task_id=self.next_id, root=self.next_id, iteration=3)
        self.model_mem.append(self.next_id)
        self.next_id += 1
        self.queue.push(task)

    @rule()
    def pop(self):
        got = self.queue.pop()
        if self.model_mem:
            assert got is not None and got.task_id == self.model_mem.pop(0)
        else:
            assert got is None

    @precondition(lambda self: True)
    @rule()
    def refill(self):
        count = self.queue.refill_from_spill()
        if self.model_disk:
            batch = self.model_disk.pop()
            self.model_mem[:0] = batch
            assert count == len(batch)
        else:
            assert count == 0

    @rule(n=st.integers(min_value=1, max_value=4))
    def pop_batch(self, n):
        got = self.queue.pop_batch(n)
        take = min(n, len(self.model_mem))
        expected = self.model_mem[len(self.model_mem) - take :] if take else []
        del self.model_mem[len(self.model_mem) - take :]
        assert [t.task_id for t in got] == expected

    @invariant()
    def lengths_agree(self):
        assert len(self.queue) == len(self.model_mem)
        assert len(self.spill) == len(self.model_disk)

    def teardown(self):
        self.spill.cleanup()


class CacheMachine(RuleBasedStateMachine):
    """Model: bounded LRU — hits refresh recency; eviction is oldest-first."""

    def __init__(self):
        super().__init__()
        self.capacity = 4
        self.cache = RemoteVertexCache(self.capacity)
        self.model: dict[int, list[int]] = {}  # insertion-ordered = LRU order

    @rule(key=st.integers(min_value=0, max_value=9))
    def put(self, key):
        value = [key, key + 1]
        self.cache.put(key, value)
        self.model.pop(key, None)
        self.model[key] = value
        while len(self.model) > self.capacity:
            oldest = next(iter(self.model))
            del self.model[oldest]

    @rule(key=st.integers(min_value=0, max_value=9))
    def get(self, key):
        got = self.cache.get(key)
        want = self.model.get(key)
        assert got == want
        if want is not None:
            # Refresh recency in the model.
            del self.model[key]
            self.model[key] = want

    @invariant()
    def size_bounded(self):
        assert len(self.cache) <= self.capacity
        assert len(self.cache) == len(self.model)


class LeaseTableMachine(RuleBasedStateMachine):
    """Model: the fault-tolerant dispatch cycle around a TaskLeaseTable.

    Tasks move queued → leased → {completed | back to queued | quarantined}
    exactly as the MultiprocessEngine drives them: granted in batches to
    workers, completed when a result lands, reclaimed when a worker dies
    or a lease's deadline passes. The invariants are the safety net the
    at-least-once design hangs from:

    * a task is never simultaneously queued and leased;
    * no task's dispatch count ever exceeds max_attempts;
    * conservation — queued + leased + completed + quarantined always
      equals every task ever spawned (nothing is lost or duplicated);
    * a quarantined task never re-enters circulation.
    """

    MAX_ATTEMPTS = 3
    WORKERS = 3
    LEASE_TIMEOUT = 5.0

    def __init__(self):
        super().__init__()
        self.table = TaskLeaseTable(self.MAX_ATTEMPTS)
        self.clock = 0.0
        self.next_task = 0
        self.next_batch = 0
        self.queued: list[Task] = []
        self.model_leased: dict[int, set[int]] = {}  # batch_id -> task ids
        self.model_completed: set[int] = set()
        self.model_quarantined: set[int] = set()

    # -- rules -------------------------------------------------------------

    @rule(n=st.integers(min_value=1, max_value=3))
    def spawn_tasks(self, n):
        for _ in range(n):
            self.queued.append(
                Task(task_id=self.next_task, root=self.next_task, iteration=3)
            )
            self.next_task += 1

    @precondition(lambda self: self.queued)
    @rule(worker=st.integers(min_value=0, max_value=WORKERS - 1),
          size=st.integers(min_value=1, max_value=2))
    def grant(self, worker, size):
        batch, self.queued = self.queued[:size], self.queued[size:]
        bid = self.next_batch
        self.next_batch += 1
        lease = self.table.grant(
            bid, worker, batch, now=self.clock, timeout=self.LEASE_TIMEOUT
        )
        assert lease.worker_id == worker
        assert set(lease.task_ids) == {t.task_id for t in batch}
        self.model_leased[bid] = {t.task_id for t in batch}

    @precondition(lambda self: self.model_leased)
    @rule(pick=st.integers(min_value=0, max_value=99))
    def complete(self, pick):
        bid = sorted(self.model_leased)[pick % len(self.model_leased)]
        lease = self.table.complete(bid)
        assert lease is not None and lease.batch_id == bid
        self.model_completed |= self.model_leased.pop(bid)

    @rule(bid=st.integers(min_value=0, max_value=500))
    def complete_stale(self, bid):
        """Completing a never-granted or already-settled batch is the
        at-least-once duplicate: it must be a detectable no-op."""
        if bid in self.model_leased:
            return
        assert self.table.complete(bid) is None

    @precondition(lambda self: self.model_leased)
    @rule(worker=st.integers(min_value=0, max_value=WORKERS - 1))
    def fail_worker(self, worker):
        for lease in self.table.leases_for(worker):
            retry, quarantine = self.table.reclaim(lease)
            ids = self.model_leased.pop(lease.batch_id)
            got = {t.task_id for t, _ in retry} | {t.task_id for t, _ in quarantine}
            assert got == ids
            self.queued.extend(t for t, _ in retry)
            self.model_quarantined |= {t.task_id for t, _ in quarantine}

    @precondition(lambda self: self.model_leased)
    @rule()
    def expire_all_leases(self):
        """Advance the clock past every deadline; reclaim what expired."""
        self.clock += self.LEASE_TIMEOUT + 1.0
        for lease in self.table.expired(self.clock):
            retry, quarantine = self.table.reclaim(lease)
            self.model_leased.pop(lease.batch_id)
            self.queued.extend(t for t, _ in retry)
            self.model_quarantined |= {t.task_id for t, _ in quarantine}

    @rule()
    def tick(self):
        self.clock += 1.0

    # -- invariants --------------------------------------------------------

    @invariant()
    def never_both_queued_and_leased(self):
        queued_ids = {t.task_id for t in self.queued}
        leased_ids = self.table.leased_task_ids()
        assert not (queued_ids & leased_ids)
        assert leased_ids == set().union(set(), *self.model_leased.values())

    @invariant()
    def attempts_bounded(self):
        counts = self.table.attempts_snapshot().values()
        assert all(1 <= c <= self.MAX_ATTEMPTS for c in counts)

    @invariant()
    def conservation(self):
        queued_ids = {t.task_id for t in self.queued}
        leased_ids = self.table.leased_task_ids()
        accounted = (
            queued_ids | leased_ids | self.model_completed | self.model_quarantined
        )
        assert accounted == set(range(self.next_task))
        # The four states partition the task population.
        assert (
            len(queued_ids) + len(leased_ids)
            + len(self.model_completed) + len(self.model_quarantined)
            == self.next_task
        )

    @invariant()
    def quarantine_is_terminal(self):
        queued_ids = {t.task_id for t in self.queued}
        assert not (self.model_quarantined & queued_ids)
        assert not (self.model_quarantined & self.table.leased_task_ids())
        # Counted exactly once, ever.
        assert len(self.table.quarantined_ids) == len(set(self.table.quarantined_ids))
        assert self.table.tasks_quarantined == len(self.model_quarantined)

    @invariant()
    def table_counters_agree(self):
        assert self.table.tasks_completed == len(self.model_completed)
        assert len(self.table) == len(self.model_leased)
        assert self.table.outstanding == set(self.model_leased)

    @invariant()
    def ledger_internal_invariants(self):
        self.table.check_invariants()


@dataclass
class _Unit:
    """Stand-in for the cluster master's _WorkUnit: one member per lease."""

    work_id: int
    payload: tuple

    @property
    def size(self) -> int:
        return len(self.payload)


class WorkUnitLedgerMachine(RuleBasedStateMachine):
    """Model: the same WorkLedger driven socket-style, as the cluster
    master drives it.

    Where the process pool grants *batches of tasks* (many members per
    lease, attempts per task id), the cluster grants *work units* (one
    member per lease, attempts per work id, task-granular sizes) under a
    per-worker lease window — with the deliberate over-commit escape
    hatch used for steal forwarding. Both styles must satisfy the same
    conservation/attempt/quarantine laws; this machine checks the
    second, including owner-identified stale completions.
    """

    MAX_ATTEMPTS = 3
    WORKERS = 3
    WINDOW = 2
    LEASE_TIMEOUT = 5.0

    def __init__(self):
        super().__init__()
        self.ledger: WorkLedger[_Unit] = WorkLedger(
            self.MAX_ATTEMPTS,
            key=lambda u: u.work_id,
            size=lambda u: u.size,
            lease_window=self.WINDOW,
        )
        self.clock = 0.0
        self.next_work = 0
        self.pending: list[_Unit] = []
        self.model_leased: dict[int, int] = {}  # work_id -> owner worker
        self.model_completed: dict[int, int] = {}  # work_id -> size
        self.model_quarantined: set[int] = set()

    # -- rules -------------------------------------------------------------

    @rule(size=st.integers(min_value=1, max_value=3))
    def make_unit(self, size):
        self.pending.append(_Unit(self.next_work, tuple(range(size))))
        self.next_work += 1

    @precondition(lambda self: self.pending)
    @rule(worker=st.integers(min_value=0, max_value=WORKERS - 1))
    def grant(self, worker):
        """The _pump path: a grant either fits the window or is refused
        outright — refusal must leave the ledger untouched."""
        unit = self.pending[0]
        if self.ledger.has_window(worker):
            lease = self.ledger.grant(
                unit.work_id, worker, [unit],
                now=self.clock, timeout=self.LEASE_TIMEOUT,
            )
            self.pending.pop(0)
            assert lease.keys == (unit.work_id,)
            self.model_leased[unit.work_id] = worker
        else:
            before = self.ledger.attempts_snapshot()
            with pytest.raises(ValueError):
                self.ledger.grant(
                    unit.work_id, worker, [unit],
                    now=self.clock, timeout=self.LEASE_TIMEOUT,
                )
            assert self.ledger.attempts_snapshot() == before

    @precondition(lambda self: self.pending)
    @rule(worker=st.integers(min_value=0, max_value=WORKERS - 1))
    def grant_over_window(self, worker):
        """The steal-forwarding path: enforce_window=False always lands."""
        unit = self.pending.pop(0)
        self.ledger.grant(
            unit.work_id, worker, [unit],
            now=self.clock, timeout=self.LEASE_TIMEOUT,
            enforce_window=False,
        )
        self.model_leased[unit.work_id] = worker

    @precondition(lambda self: self.model_leased)
    @rule(pick=st.integers(min_value=0, max_value=99))
    def complete_by_owner(self, pick):
        work_id = sorted(self.model_leased)[pick % len(self.model_leased)]
        owner = self.model_leased[work_id]
        lease = self.ledger.complete(work_id, worker_id=owner)
        assert lease is not None and lease.worker_id == owner
        del self.model_leased[work_id]
        self.model_completed[work_id] = sum(u.size for u in lease.items)

    @precondition(lambda self: self.model_leased)
    @rule(pick=st.integers(min_value=0, max_value=99))
    def complete_wrong_owner_is_stale(self, pick):
        """A completion from a worker that no longer owns the lease is
        the at-least-once duplicate: dropped, nothing retired."""
        work_id = sorted(self.model_leased)[pick % len(self.model_leased)]
        wrong = self.model_leased[work_id] + self.WORKERS  # never a real owner
        assert self.ledger.complete(work_id, worker_id=wrong) is None
        assert work_id in self.ledger.outstanding

    @rule(work_id=st.integers(min_value=0, max_value=500))
    def complete_unknown_is_stale(self, work_id):
        if work_id in self.model_leased:
            return
        assert self.ledger.complete(work_id) is None

    @precondition(lambda self: self.model_leased)
    @rule(worker=st.integers(min_value=0, max_value=WORKERS - 1))
    def fail_worker(self, worker):
        for lease in self.ledger.leases_for(worker):
            retry, quarantine = self.ledger.reclaim(lease)
            assert self.model_leased.pop(lease.lease_id) == worker
            self.pending.extend(u for u, _ in retry)
            self.model_quarantined |= {u.work_id for u, _ in quarantine}

    @precondition(lambda self: self.model_leased)
    @rule()
    def expire_all_leases(self):
        self.clock += self.LEASE_TIMEOUT + 1.0
        for lease in self.ledger.expired(self.clock):
            retry, quarantine = self.ledger.reclaim(lease)
            self.model_leased.pop(lease.lease_id)
            self.pending.extend(u for u, _ in retry)
            self.model_quarantined |= {u.work_id for u, _ in quarantine}

    @rule()
    def tick(self):
        self.clock += 1.0

    # -- invariants --------------------------------------------------------

    @invariant()
    def conservation(self):
        pending_ids = {u.work_id for u in self.pending}
        leased_ids = set(self.model_leased)
        accounted = (
            pending_ids | leased_ids
            | set(self.model_completed) | self.model_quarantined
        )
        assert accounted == set(range(self.next_work))
        assert (
            len(pending_ids) + len(leased_ids)
            + len(self.model_completed) + len(self.model_quarantined)
            == self.next_work
        )

    @invariant()
    def ledger_agrees_with_model(self):
        assert self.ledger.outstanding == set(self.model_leased)
        for work_id, worker in self.model_leased.items():
            lease = self.ledger.get(work_id)
            assert lease is not None and lease.worker_id == worker
        assert self.ledger.tasks_completed == sum(self.model_completed.values())
        assert self.ledger.tasks_quarantined >= len(self.model_quarantined)

    @invariant()
    def attempts_bounded(self):
        counts = self.ledger.attempts_snapshot().values()
        assert all(1 <= c <= self.MAX_ATTEMPTS for c in counts)

    @invariant()
    def quarantine_is_terminal(self):
        assert not (self.model_quarantined & {u.work_id for u in self.pending})
        assert not (self.model_quarantined & set(self.model_leased))
        assert len(self.ledger.quarantined_ids) == len(
            set(self.ledger.quarantined_ids)
        )

    @invariant()
    def ledger_internal_invariants(self):
        self.ledger.check_invariants()


TestSpillableQueueStateful = SpillableQueueMachine.TestCase
TestSpillableQueueStateful.settings = settings(max_examples=40, deadline=None)
TestCacheStateful = CacheMachine.TestCase
TestCacheStateful.settings = settings(max_examples=40, deadline=None)
TestLeaseTableStateful = LeaseTableMachine.TestCase
TestLeaseTableStateful.settings = settings(max_examples=60, deadline=None)
TestWorkUnitLedgerStateful = WorkUnitLedgerMachine.TestCase
TestWorkUnitLedgerStateful.settings = settings(max_examples=60, deadline=None)
