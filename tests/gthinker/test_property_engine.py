"""Hypothesis property test: every engine mode equals the serial miner.

The cross-mode equivalence is the system-half analog of the oracle
test: whatever the scheduling, decomposition, spilling, or machine
count, the maximal quasi-clique family must be identical.
"""

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.miner import mine_maximal_quasicliques
from repro.graph.adjacency import Graph
from repro.gthinker.config import EngineConfig
from repro.gthinker.engine import mine_parallel
from repro.gthinker.simulation import simulate_cluster


@st.composite
def small_graphs(draw, max_vertices: int = 10):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    pairs = list(itertools.combinations(range(n), 2))
    mask = draw(st.lists(st.booleans(), min_size=len(pairs), max_size=len(pairs)))
    return Graph.from_edges(
        [p for p, keep in zip(pairs, mask) if keep], vertices=range(n)
    )


ENGINE_CONFIGS = [
    EngineConfig(decompose="none"),
    EngineConfig(decompose="size", tau_split=2),
    EngineConfig(decompose="timed", tau_time=0, time_unit="ops", tau_split=2),
    EngineConfig(decompose="timed", tau_time=15, time_unit="ops", tau_split=3,
                 queue_capacity=4, batch_size=2),
]


@given(
    graph=small_graphs(),
    gamma=st.sampled_from([0.5, 2 / 3, 0.75, 0.9, 1.0]),
    min_size=st.integers(min_value=1, max_value=4),
    config=st.sampled_from(ENGINE_CONFIGS),
)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_engine_equals_serial_miner(graph, gamma, min_size, config):
    serial = mine_maximal_quasicliques(graph, gamma, min_size).maximal
    parallel = mine_parallel(graph, gamma, min_size, config).maximal
    assert parallel == serial


@given(
    graph=small_graphs(max_vertices=9),
    gamma=st.sampled_from([0.5, 0.75, 0.9]),
    machines=st.integers(min_value=1, max_value=3),
    threads=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_simulator_equals_serial_miner(graph, gamma, machines, threads):
    config = EngineConfig(
        num_machines=machines,
        threads_per_machine=threads,
        decompose="timed",
        tau_time=10,
        time_unit="ops",
        tau_split=3,
    )
    serial = mine_maximal_quasicliques(graph, gamma, 2).maximal
    sim = simulate_cluster(graph, gamma, 2, config).maximal
    assert sim == serial
