"""Cluster runtime integration tests: real sockets, real processes.

Three acceptance properties of the TCP master/worker engine:

1. **Oracle equivalence** — a 2-worker localhost cluster produces
   exactly the brute-force family of maximal quasi-cliques.
2. **Observable stealing** — under asymmetric load (one worker owning
   a mountain of slow big tasks, its peer idle), the master's planner
   must fire and every transfer must leave the `steal_planned` /
   `steal_sent` / `steal_received` triple in the trace and metrics.
3. **Fault tolerance** — SIGKILLing a worker mid-job (fork and spawn)
   must be invisible in the result set: the master reclaims its leases
   and the at-least-once re-mining deduplicates away.

On an equivalence failure the master-side trace is dumped as JSONL
under $CLUSTER_TRACE_DIR (the CI smoke job uploads it as an artifact).
"""

import multiprocessing
import os

import pytest
from conftest import make_random_graph

from repro.core.naive import enumerate_maximal_quasicliques
from repro.graph.adjacency import Graph
from repro.gthinker.chaos import FaultInjection, SleepyBigTaskApp
from repro.gthinker.cluster import mine_cluster, run_cluster_app
from repro.gthinker.config import EngineConfig
from repro.gthinker.engine import mine_parallel
from repro.gthinker.tracing import Tracer

#: Hard wall-clock bound on any single cluster job in this file: a
#: scheduling bug must fail the test, not hang the suite.
JOB_TIMEOUT = 120.0


def cluster_config(**kwargs) -> EngineConfig:
    """The cross-executor policy workload, tuned for fast localhost runs
    (tight heartbeats so steal planning and death detection are quick)."""
    base = dict(
        backend="cluster", num_procs=2,
        decompose="timed", tau_time=10, time_unit="ops", tau_split=3,
        queue_capacity=4, batch_size=2,
        heartbeat_period=0.02, heartbeat_timeout=5.0,
    )
    base.update(kwargs)
    return EngineConfig(**base)


def start_method_or_skip(name: str) -> str:
    if name not in multiprocessing.get_all_start_methods():
        pytest.skip(f"start method {name!r} not available on this platform")
    return name


def dump_trace(tracer: Tracer, label: str) -> None:
    trace_dir = os.environ.get("CLUSTER_TRACE_DIR")
    if trace_dir:
        os.makedirs(trace_dir, exist_ok=True)
        tracer.dump_jsonl(os.path.join(trace_dir, f"{label}.jsonl"))


class TestOracleEquivalence:
    def test_two_worker_cluster_matches_oracle(self):
        graph = make_random_graph(12, 0.5, seed=11)
        expected = enumerate_maximal_quasicliques(graph, 0.75, 3)
        tracer = Tracer()
        out = mine_cluster(
            graph, 0.75, 3, config=cluster_config(), tracer=tracer,
            timeout=JOB_TIMEOUT,
        )
        if out.maximal != expected:
            dump_trace(tracer, "oracle-equivalence")
        assert out.maximal == expected
        assert out.metrics.results == len(expected)
        assert out.metrics.workers_died == 0

    def test_candidates_match_serial_run(self):
        """Same raw candidate family as the serial driver: at-least-once
        delivery plus master-side dedup is invisible below postprocess."""
        graph = make_random_graph(10, 0.5, seed=3)
        serial = mine_parallel(
            graph, 0.75, 3, cluster_config(backend="serial", num_procs=0)
        )
        clustered = mine_cluster(
            graph, 0.75, 3, config=cluster_config(), timeout=JOB_TIMEOUT
        )
        assert clustered.candidates == serial.candidates
        assert clustered.maximal == serial.maximal

    def test_mine_parallel_dispatches_cluster_backend(self):
        graph = make_random_graph(8, 0.6, seed=5)
        expected = enumerate_maximal_quasicliques(graph, 0.75, 3)
        out = mine_parallel(graph, 0.75, 3, cluster_config())
        assert out.maximal == expected

    def test_spill_dirs_do_not_collide(self, tmp_path):
        """Two localhost workers sharing a configured spill_dir must not
        clobber each other's spill files (per-worker subdirectories)."""
        graph = make_random_graph(12, 0.5, seed=13)
        expected = enumerate_maximal_quasicliques(graph, 0.75, 3)
        out = mine_cluster(
            graph, 0.75, 3,
            config=cluster_config(
                spill_dir=str(tmp_path), queue_capacity=2, batch_size=1
            ),
            timeout=JOB_TIMEOUT,
        )
        assert out.maximal == expected


class TestStealObservability:
    def test_asymmetric_load_triggers_observable_steals(self):
        """One worker gets the entire spawn range of slow big tasks; its
        idle peer must receive master-coordinated steals, observable as
        the planned/sent/received triple in trace and metrics."""
        start_method = start_method_or_skip("fork")
        n = 16
        graph = Graph.from_edges([], vertices=range(n))
        config = cluster_config(
            tau_split=0,  # every task is big (SleepyBigTaskApp's ext)
            cluster_chunk_size=n,  # the whole range is ONE work unit
            steal_period_seconds=0.02,
            batch_size=4,
        )
        tracer = Tracer()
        out = run_cluster_app(
            graph, SleepyBigTaskApp(sleep_seconds=0.03), config,
            tracer=tracer, num_workers=2, start_method=start_method,
            timeout=JOB_TIMEOUT,
        )
        expected = {frozenset({v}) for v in range(n)}
        if out.candidates != expected:
            dump_trace(tracer, "steal-observability")
        assert out.candidates == expected
        counts = tracer.counts()
        metrics = out.metrics
        assert metrics.steals_planned >= 1, (
            f"no steals planned under asymmetric load; trace={counts}"
        )
        assert counts.get("steal_planned", 0) >= 1
        assert counts.get("steal_sent", 0) >= 1
        assert counts.get("steal_received", 0) >= 1
        assert metrics.steals_sent == metrics.steals_received
        assert metrics.stolen_tasks == metrics.steals_sent
        # Stolen work really ran somewhere else: the recipient completed
        # at least one forwarded batch (trace shows its spawn-free work).
        assert counts.get("steal_sent") == counts.get("steal_received")


class TestFaultTolerance:
    def test_sigkill_one_worker_mid_job(self):
        """Kill one worker mid-job: the master must detect the death,
        reclaim its leases, and still match the oracle exactly.

        One smoke-level TCP run; the heavy fault-space exploration of
        this scenario lives in the deterministic simulator
        (test_sim_cluster.py and `repro sim-fuzz`), where a crash can
        be placed at an exact virtual time instead of wherever the OS
        scheduler drops it."""
        start_method = start_method_or_skip("fork")
        graph = make_random_graph(12, 0.5, seed=7)
        expected = enumerate_maximal_quasicliques(graph, 0.75, 3)
        tracer = Tracer()
        out = mine_cluster(
            graph, 0.75, 3,
            config=cluster_config(cluster_chunk_size=1, max_attempts=5),
            tracer=tracer, start_method=start_method,
            fault_injection=FaultInjection(worker_id=0, after_batches=1),
            timeout=JOB_TIMEOUT,
        )
        if out.maximal != expected:
            dump_trace(tracer, f"chaos-{start_method}")
        assert out.maximal == expected
        # A one-shot transient fault never poisons work.
        assert out.metrics.tasks_quarantined == 0
        if out.metrics.workers_died:
            assert out.metrics.tasks_retried >= 1
            assert tracer.events(kind="worker_died")

    def test_fork_death_is_deterministically_injected(self):
        """Under fork (fast worker startup) the chunked ledger guarantees
        the targeted worker receives a second lease, so the injected
        death must actually fire — keeping the chaos path honestly
        exercised rather than vacuously green."""
        start_method = start_method_or_skip("fork")
        graph = make_random_graph(14, 0.5, seed=21)
        expected = enumerate_maximal_quasicliques(graph, 0.75, 3)
        out = mine_cluster(
            graph, 0.75, 3,
            config=cluster_config(cluster_chunk_size=1, max_attempts=5),
            start_method=start_method,
            fault_injection=FaultInjection(worker_id=0, after_batches=0),
            timeout=JOB_TIMEOUT,
        )
        assert out.maximal == expected
        assert out.metrics.workers_died >= 1
        assert out.metrics.tasks_retried >= 1


class TestMemoryBounded:
    """Tentpole acceptance of the distributed vertex store: a cluster
    worker's resident adjacency stays ≈ |V|/num_workers + cache
    capacity — it never reassembles the full graph."""

    def test_workers_never_hold_the_full_graph(self):
        import threading

        from repro.gthinker.cluster.master import ClusterMaster
        from repro.gthinker.cluster.worker import ClusterWorker

        graph = make_random_graph(40, 0.25, seed=29)
        serial = mine_parallel(
            graph, 0.75, 3, cluster_config(backend="serial", num_procs=0)
        )
        config = cluster_config(cache_capacity=8)
        master = ClusterMaster(
            graph, _quasiclique_app(0.75, 3), config,
            host="127.0.0.1", port=0, num_workers=2,
        )
        host, port = master.start()
        result: dict = {}

        def drive():
            try:
                result["out"] = master.run(timeout=JOB_TIMEOUT)
            except Exception as exc:
                result["error"] = exc

        master_thread = threading.Thread(target=drive, daemon=True)
        master_thread.start()
        # In-process workers (threads, real sockets) so their reactors
        # stay inspectable after the job: no --graph, so each receives
        # only its partition and fetches the rest on demand.
        workers = [ClusterWorker(host, port) for _ in range(2)]
        worker_threads = [
            threading.Thread(target=w.run, daemon=True) for w in workers
        ]
        for t in worker_threads:
            t.start()
        master_thread.join(JOB_TIMEOUT)
        for t in worker_threads:
            t.join(10.0)
        assert "error" not in result, result.get("error")
        out = result["out"]
        assert out.maximal == serial.maximal
        assert out.candidates == serial.candidates
        for w in workers:
            access = w.reactor.access
            assert access is not None, "worker fell back to a full graph"
            table_size = len(w.reactor.machine.table)
            assert table_size < graph.num_vertices
            # The headline bound, and the tight one: partition + bounded
            # cache (pins are all released once the job quiesces).
            assert access.resident_entries() < graph.num_vertices
            assert access.resident_entries() <= table_size + access.cache.capacity
            assert len(access.cache) <= access.cache.capacity
        m = out.metrics
        assert m.remote_vertex_hits + m.remote_vertex_misses > 0, (
            "no remote vertex traffic: the store was never exercised"
        )


class TestStatusQuery:
    """StatusRequest/StatusReply: one-round-trip live progress from the
    master, served to any connected peer without registration."""

    def test_observer_queries_running_master(self):
        start_method = start_method_or_skip("fork")
        import threading

        from repro.gthinker.cluster.master import ClusterMaster
        from repro.gthinker.cluster.worker import ClusterWorker
        from repro.gthinker.obs import ProgressSnapshot, query_master_status

        graph = make_random_graph(10, 0.5, seed=17)
        master = ClusterMaster(
            graph, _quasiclique_app(0.75, 3), cluster_config(num_procs=1),
            host="127.0.0.1", port=0, num_workers=1,
        )
        host, port = master.start()
        result: dict = {}

        def drive():
            try:
                result["out"] = master.run(timeout=JOB_TIMEOUT)
            except Exception as exc:  # surfaced after join
                result["error"] = exc

        thread = threading.Thread(target=drive, daemon=True)
        thread.start()
        # No worker has joined yet: the job is fully pending, and the
        # observer still gets an answer without registering.
        snapshot = query_master_status(host, port, timeout=10.0)
        assert isinstance(snapshot, ProgressSnapshot)
        assert snapshot.workers_alive == 0
        assert snapshot.tasks_pending >= 1
        assert snapshot.tasks_done == 0
        assert snapshot.wall_seconds >= 0.0
        # Now let one real worker finish the job.
        ctx = multiprocessing.get_context(start_method)
        proc = ctx.Process(
            target=_status_worker_entry, args=(host, port), daemon=True
        )
        proc.start()
        thread.join(JOB_TIMEOUT)
        proc.join(10.0)
        assert "error" not in result, result.get("error")
        assert result["out"].maximal == enumerate_maximal_quasicliques(
            graph, 0.75, 3
        )

    def test_unreachable_master_raises_oserror(self):
        import socket

        from repro.gthinker.obs import query_master_status

        # Grab a port that is certainly not listening.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(OSError):
            query_master_status("127.0.0.1", port, timeout=1.0)


def _status_worker_entry(host: str, port: int) -> None:
    from repro.gthinker.cluster.worker import ClusterWorker

    ClusterWorker(host, port).run()


def _quasiclique_app(gamma: float, min_size: int):
    from repro.core.options import DEFAULT_OPTIONS, ResultSink
    from repro.gthinker.app_quasiclique import QuasiCliqueApp

    return QuasiCliqueApp(
        gamma=gamma, min_size=min_size, sink=ResultSink(),
        options=DEFAULT_OPTIONS,
    )
