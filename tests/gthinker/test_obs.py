"""Tests for the observability layer (repro.gthinker.obs).

Pins the span contract (pairing, nesting, vocabulary), per-worker
timing accounting, live-progress snapshots, and the unified
worker-attribution rule — the parts of docs/OBSERVABILITY.md that are
behaviour, not prose.
"""

import pytest
from conftest import make_random_graph

from repro.gthinker.config import EngineConfig
from repro.gthinker.engine import mine_parallel
from repro.gthinker.engine_mp import mine_multiprocess
from repro.gthinker.metrics import EngineMetrics, WorkerTiming
from repro.gthinker.obs import (
    SPAN_NAMES,
    ProgressSnapshot,
    emit_span,
    format_progress,
    parse_detail,
    progress_detail,
    span,
)
from repro.gthinker.runtime import worker_attribution
from repro.gthinker.simulation import simulate_cluster
from repro.gthinker.tracing import NullTracer, Tracer


class TestEmitSpan:
    def test_emits_begin_end_pair(self):
        tracer = Tracer()
        emit_span(tracer, "batch_mine", 1.0, 1.5, task_id=7,
                  machine=2, thread=1, detail="children=3")
        begin, end = tracer.events()
        assert begin.kind == "span_begin" and end.kind == "span_end"
        assert (begin.task_id, begin.machine, begin.thread) == (7, 2, 1)
        assert (end.task_id, end.machine, end.thread) == (7, 2, 1)
        assert parse_detail(begin.detail) == {
            "name": "batch_mine", "t": "1.000000", "children": "3"
        }
        fields = parse_detail(end.detail)
        assert fields["name"] == "batch_mine"
        assert float(fields["dur"]) == pytest.approx(0.5)
        assert float(fields["t"]) == pytest.approx(1.5)

    def test_null_tracer_is_free(self):
        # Must not raise; NullTracer has enabled=False and no buffer.
        emit_span(NullTracer(), "root_spawn", 0.0, 1.0)

    def test_span_context_manager(self):
        tracer = Tracer()
        with span(tracer, "lease_reclaim", thread=3, detail="retried=2"):
            pass
        begin, end = tracer.events()
        assert begin.kind == "span_begin" and end.kind == "span_end"
        assert begin.thread == end.thread == 3
        assert float(parse_detail(end.detail)["dur"]) >= 0.0

    def test_span_suppressed_on_exception(self):
        """An exception inside the block must not orphan a begin event."""
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with span(tracer, "result_fold"):
                raise RuntimeError("boom")
        assert tracer.events() == []

    def test_parse_detail_tolerates_free_text(self):
        assert parse_detail("worker 3 gone a=1 b=x=y") == {"a": "1", "b": "x=y"}
        assert parse_detail("") == {}


def spans_by_stream(tracer):
    """Span events grouped per (machine, thread) emission stream."""
    streams = {}
    for event in tracer.events():
        if event.kind in ("span_begin", "span_end"):
            streams.setdefault((event.machine, event.thread), []).append(event)
    return streams


def assert_spans_pair(stream_events):
    """Retroactive emission: each begin is immediately followed by its
    end in the same stream, with matching name and a sane duration."""
    assert len(stream_events) % 2 == 0
    for begin, end in zip(stream_events[::2], stream_events[1::2]):
        assert begin.kind == "span_begin"
        assert end.kind == "span_end"
        b, e = parse_detail(begin.detail), parse_detail(end.detail)
        assert b["name"] == e["name"]
        assert b["name"] in SPAN_NAMES
        assert begin.task_id == end.task_id
        assert float(e["dur"]) >= 0.0
        assert float(e["t"]) >= float(b["t"])


class TestSpanStreamInvariants:
    """Spans recorded by a real run pair and nest per worker stream."""

    def run_config(self, **overrides):
        base = dict(
            num_machines=2, threads_per_machine=2, tau_split=3,
            tau_time=50, decompose="timed", queue_capacity=4, batch_size=2,
            steal_period_seconds=0.001,
        )
        base.update(overrides)
        return EngineConfig(**base)

    def test_threaded_run_spans_pair_and_nest(self):
        graph = make_random_graph(14, 0.5, seed=5)
        tracer = Tracer()
        mine_parallel(graph, 0.75, 3, self.run_config(), tracer=tracer)
        streams = spans_by_stream(tracer)
        assert streams, "a traced engine run must emit spans"
        for stream_events in streams.values():
            assert_spans_pair(stream_events)
        names = {
            parse_detail(e.detail)["name"]
            for events in streams.values() for e in events
        }
        assert {"root_spawn", "batch_mine"} <= names

    def test_process_run_spans_pair(self):
        graph = make_random_graph(12, 0.5, seed=9)
        tracer = Tracer()
        mine_multiprocess(
            graph, 0.75, 3,
            EngineConfig(backend="process", num_procs=2, tau_split=4,
                         queue_capacity=4, batch_size=2),
            tracer=tracer,
        )
        streams = spans_by_stream(tracer)
        assert streams, "worker batch_mine spans must reach the parent tracer"
        for stream_events in streams.values():
            assert_spans_pair(stream_events)

    def test_untraced_run_emits_nothing(self):
        graph = make_random_graph(10, 0.5, seed=3)
        out = mine_parallel(graph, 0.75, 3, self.run_config())
        # No tracer: the span sites must stay entirely off the hot path.
        assert out.maximal is not None


class TestWorkerTiming:
    def test_merge_is_componentwise(self):
        a = WorkerTiming(wall_seconds=1.0, mine_seconds=0.6, idle_seconds=0.4)
        a.merge(WorkerTiming(wall_seconds=0.5, mine_seconds=0.1,
                             idle_seconds=0.4))
        assert a == WorkerTiming(wall_seconds=1.5, mine_seconds=0.7,
                                 idle_seconds=0.8)

    def test_metrics_merge_accumulates_timing(self):
        left, right = EngineMetrics(), EngineMetrics()
        left.timing[0] = WorkerTiming(wall_seconds=1.0, mine_seconds=1.0)
        right.timing[0] = WorkerTiming(wall_seconds=2.0, idle_seconds=2.0)
        right.timing[1] = WorkerTiming(wall_seconds=3.0)
        left.merge(right)
        assert left.timing[0] == WorkerTiming(
            wall_seconds=3.0, mine_seconds=1.0, idle_seconds=2.0
        )
        assert left.timing[1].wall_seconds == 3.0

    def test_serial_run_records_one_row(self):
        graph = make_random_graph(10, 0.5, seed=1)
        out = mine_parallel(graph, 0.75, 3, EngineConfig())
        assert set(out.metrics.timing) == {0}
        row = out.metrics.timing[0]
        assert row.wall_seconds > 0
        assert row.mine_seconds > 0
        assert row.wall_seconds >= row.mine_seconds

    def test_threaded_run_records_every_global_thread(self):
        graph = make_random_graph(12, 0.5, seed=2)
        config = EngineConfig(num_machines=2, threads_per_machine=2)
        out = mine_parallel(graph, 0.75, 3, config)
        # Global thread index: machine_id * threads_per_machine + slot.
        assert set(out.metrics.timing) == {0, 1, 2, 3}
        for row in out.metrics.timing.values():
            assert row.wall_seconds > 0
            assert row.wall_seconds >= row.mine_seconds

    def test_process_run_records_per_worker(self):
        graph = make_random_graph(12, 0.5, seed=4)
        config = EngineConfig(backend="process", num_procs=2, tau_split=4,
                              queue_capacity=4, batch_size=2)
        out = mine_multiprocess(graph, 0.75, 3, config)
        assert out.metrics.timing, "process workers must report timing"
        assert set(out.metrics.timing) <= {0, 1}
        for row in out.metrics.timing.values():
            assert row.wall_seconds == pytest.approx(
                row.mine_seconds + row.idle_seconds
            )

    def test_simulated_run_has_no_timing(self):
        """The virtual-time backend is exempt: its clock is not wall."""
        graph = make_random_graph(10, 0.5, seed=6)
        out = simulate_cluster(
            graph, 0.75, 3,
            EngineConfig(backend="simulated", num_machines=2,
                         threads_per_machine=2),
        )
        assert out.metrics.timing == {}


class TestProgressSnapshot:
    def snapshot(self, **overrides):
        base = dict(
            wall_seconds=1.25, tasks_pending=4, tasks_leased=2,
            tasks_done=9, candidates=3, workers_alive=2, workers_died=0,
        )
        base.update(overrides)
        return ProgressSnapshot(**base)

    def test_detail_round_trips(self):
        fields = parse_detail(progress_detail(self.snapshot()))
        assert fields == {
            "wall": "1.250", "pending": "4", "leased": "2", "done": "9",
            "candidates": "3", "workers": "2", "died": "0",
        }

    def test_format_mentions_deaths_only_when_nonzero(self):
        assert "died" not in format_progress(self.snapshot())
        assert "(+2 died)" in format_progress(self.snapshot(workers_died=2))

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError, match="progress_interval"):
            EngineConfig(progress_interval=-0.5)


class TestProcessProgress:
    def test_snapshots_reach_callback_and_trace(self):
        graph = make_random_graph(14, 0.5, seed=8)
        config = EngineConfig(
            backend="process", num_procs=2, tau_split=3, tau_time=50,
            queue_capacity=4, batch_size=1, progress_interval=0.005,
        )
        tracer = Tracer()
        seen = []
        mine_multiprocess(graph, 0.75, 3, config, tracer=tracer,
                          on_progress=seen.append)
        events = tracer.events(kind="progress")
        assert events, "progress events must be traced at the interval"
        assert len(seen) == len(events)
        for snapshot in seen:
            assert isinstance(snapshot, ProgressSnapshot)
            assert snapshot.wall_seconds >= 0
            assert snapshot.tasks_pending >= 0
        for event in events:
            fields = parse_detail(event.detail)
            assert set(fields) == {
                "wall", "pending", "leased", "done", "candidates",
                "workers", "died",
            }

    def test_progress_off_by_default_without_tracer(self):
        graph = make_random_graph(10, 0.5, seed=8)
        config = EngineConfig(backend="process", num_procs=2, tau_split=4)
        calls = []
        out = mine_multiprocess(graph, 0.75, 3, config)
        assert out.maximal is not None
        assert calls == []


class TestWorkerAttribution:
    def test_worker_origin_rule(self):
        assert worker_attribution(4) == (4, -1)
        assert worker_attribution(4, 2) == (4, 2)
