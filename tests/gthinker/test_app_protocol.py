"""Tests for the formal GThinkerApp protocol and its registry."""

import pytest

from repro.core.options import MiningStats, ResultSink
from repro.gthinker.app_maxclique import MaxCliqueApp
from repro.gthinker.app_protocol import (
    GThinkerApp,
    ensure_app,
    gthinker_app,
    registered_apps,
)
from repro.gthinker.app_quasiclique import QuasiCliqueApp
from repro.gthinker.app_triangles import TriangleCountApp
from repro.gthinker.config import EngineConfig
from repro.gthinker.engine import GThinkerEngine
from repro.gthinker.simulation import SimulatedClusterEngine
from repro.graph.adjacency import Graph


class TestRegistry:
    def test_bundled_apps_declared(self):
        apps = registered_apps()
        for cls in (QuasiCliqueApp, MaxCliqueApp, TriangleCountApp):
            assert cls in apps

    def test_registered_instances_satisfy_protocol(self):
        instances = [
            QuasiCliqueApp(gamma=0.75, min_size=3, sink=ResultSink()),
            MaxCliqueApp(),
            TriangleCountApp(),
        ]
        for app in instances:
            assert isinstance(app, GThinkerApp)
            assert ensure_app(app) is app

    def test_decorator_rejects_missing_udf(self):
        with pytest.raises(TypeError, match="compute"):
            @gthinker_app
            class NoCompute:
                def spawn(self, vertex, adjacency, task_id):
                    return None


class TestEnsureApp:
    def test_missing_attrs_named(self):
        class Hollow:
            def spawn(self, vertex, adjacency, task_id):
                return None

            def compute(self, task, frontier, ctx):
                raise NotImplementedError

        with pytest.raises(TypeError, match="sink, stats"):
            ensure_app(Hollow())

    def test_executors_validate_at_construction(self):
        class NotAnApp:
            pass

        g = Graph.from_edges([(0, 1)])
        with pytest.raises(TypeError, match="GThinkerApp"):
            GThinkerEngine(g, NotAnApp(), EngineConfig())
        with pytest.raises(TypeError, match="GThinkerApp"):
            SimulatedClusterEngine(g, NotAnApp(), EngineConfig())

    def test_duck_typed_app_accepted(self):
        class Minimal:
            def __init__(self):
                self.sink = ResultSink()
                self.stats = MiningStats()

            def spawn(self, vertex, adjacency, task_id):
                return None

            def compute(self, task, frontier, ctx):
                raise NotImplementedError

        app = Minimal()
        assert ensure_app(app) is app
        # A no-spawn app runs to completion on both executors.
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert GThinkerEngine(g, app, EngineConfig()).run().maximal == set()
        assert SimulatedClusterEngine(g, Minimal(), EngineConfig()).run().maximal == set()
