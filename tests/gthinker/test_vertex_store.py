"""Tests for the partitioned vertex table and remote cache."""

import pickle

import pytest

from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph
from repro.gthinker.vertex_store import (
    DataService,
    LocalVertexTable,
    RemoteGraphAccess,
    RemoteVertexCache,
    owner_of,
)

from conftest import make_random_graph


class TestPartition:
    def test_ownership_by_hash(self):
        g = make_random_graph(20, 0.3, seed=1)
        tables = LocalVertexTable.partition(g, 4)
        assert len(tables) == 4
        for m, table in enumerate(tables):
            for v in table.vertices_sorted():
                assert owner_of(v, 4) == m
        total = sum(len(t) for t in tables)
        assert total == g.num_vertices

    def test_adjacency_preserved(self):
        g = make_random_graph(15, 0.4, seed=2)
        tables = LocalVertexTable.partition(g, 3)
        for v in g.vertices():
            assert tables[owner_of(v, 3)].get(v) == g.neighbors(v)

    def test_spawn_order_sorted(self):
        g = make_random_graph(12, 0.3, seed=3)
        for table in LocalVertexTable.partition(g, 2):
            order = table.vertices_sorted()
            assert order == sorted(order)


class TestZeroCopyPartition:
    """Regression: `partition()` must store adjacency *views* — it used
    to copy every adjacency list, doubling the graph's memory during
    the partition step."""

    def test_graph_partition_shares_adjacency_objects(self):
        g = make_random_graph(14, 0.4, seed=11)
        tables = LocalVertexTable.partition(g, 2)
        for v in g.vertices():
            assert tables[owner_of(v, 2)].get(v) is g.neighbors_view(v)

    def test_csr_partition_shares_target_array(self):
        csr = CSRGraph.from_graph(make_random_graph(14, 0.4, seed=12))
        tables = LocalVertexTable.partition(csr, 2)
        for v in csr.vertices():
            entry = tables[owner_of(v, 2)].get(v)
            assert isinstance(entry, memoryview)
            assert entry.obj is csr._targets
            assert list(entry) == list(csr.neighbors(v))

    def test_entries_are_picklable_despite_views(self):
        # Views (memoryviews) can't ride the wire; entries() must
        # convert, and from_entries() must rebuild an equal table.
        csr = CSRGraph.from_graph(make_random_graph(10, 0.4, seed=13))
        table = LocalVertexTable.partition(csr, 2)[0]
        blob = pickle.dumps(table.entries())
        rebuilt = LocalVertexTable.from_entries(0, 2, pickle.loads(blob))
        assert len(rebuilt) == len(table)
        for v in table.vertices_sorted():
            assert tuple(rebuilt.get(v)) == tuple(table.get(v))


class TestCache:
    def test_hit_miss_counting(self):
        cache = RemoteVertexCache(capacity=4)
        assert cache.get(1) is None
        cache.put(1, [2, 3])
        assert cache.get(1) == [2, 3]
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction(self):
        cache = RemoteVertexCache(capacity=2)
        cache.put(1, [])
        cache.put(2, [])
        cache.get(1)  # refresh 1 → 2 is LRU
        cache.put(3, [])
        assert cache.get(2) is None
        assert cache.get(1) == []
        assert cache.evictions == 1

    def test_capacity_floor(self):
        cache = RemoteVertexCache(capacity=0)
        cache.put(1, [])
        assert len(cache) == 1  # clamped to 1


class TestDataService:
    def test_local_reads_free(self):
        g = make_random_graph(10, 0.4, seed=5)
        tables = LocalVertexTable.partition(g, 2)
        cache = RemoteVertexCache(16)
        svc = DataService(0, tables, cache)
        local_vs = tables[0].vertices_sorted()
        out = svc.resolve(local_vs)
        assert svc.remote_messages == 0
        assert svc.local_reads == len(local_vs)
        for v in local_vs:
            assert out[v] == g.neighbors(v)

    def test_remote_fetch_counts_and_caches(self):
        g = make_random_graph(10, 0.4, seed=6)
        tables = LocalVertexTable.partition(g, 2)
        svc = DataService(0, tables, RemoteVertexCache(16))
        remote_vs = tables[1].vertices_sorted()
        svc.resolve(remote_vs)
        assert svc.remote_messages == len(remote_vs)
        svc.resolve(remote_vs)  # second round served from cache
        assert svc.remote_messages == len(remote_vs)

    def test_unknown_vertex_resolves_empty(self):
        g = Graph.from_edges([(0, 1)])
        tables = LocalVertexTable.partition(g, 1)
        svc = DataService(0, tables, RemoteVertexCache(4))
        assert svc.resolve([99]) == {99: []}


class TestCustomPartitioner:
    def test_partition_routes_via_custom_owner(self):
        from repro.gthinker.partition import range_partitioner

        g = make_random_graph(12, 0.4, seed=9)
        part = range_partitioner(g, 3)
        tables = LocalVertexTable.partition(g, 3, partitioner=part)
        for v in g.vertices():
            assert tables[part.owner(v)].owns(v)
        # Contiguous ranges: every table's vertices form one interval
        # of the sorted ID space.
        for t in tables:
            vs = t.vertices_sorted()
            if vs:
                assert vs == list(range(vs[0], vs[-1] + 1))

    def test_data_service_resolves_through_custom_owner(self):
        from repro.gthinker.partition import range_partitioner

        g = make_random_graph(12, 0.4, seed=10)
        part = range_partitioner(g, 2)
        tables = LocalVertexTable.partition(g, 2, partitioner=part)
        svc = DataService(
            0, tables, RemoteVertexCache(8), partitioner=part
        )
        out = svc.resolve(sorted(g.vertices()))
        for v in g.vertices():
            assert out[v] == g.neighbors(v)


class TestRemoteGraphAccess:
    """The cluster worker's partition-plus-cache view of the graph."""

    def make(self, seed=7, capacity=4):
        g = make_random_graph(12, 0.4, seed=seed)
        tables = LocalVertexTable.partition(g, 2)
        access = RemoteGraphAccess(
            tables[0], RemoteVertexCache(capacity),
            partition_id=0, num_partitions=2,
        )
        return g, tables, access

    def test_owned_reads_are_local(self):
        g, tables, access = self.make()
        for v in tables[0].vertices_sorted():
            assert access.unresolved([v]) == []
            assert list(access.neighbors(v)) == list(g.neighbors(v))
        assert access.remote_messages == 0

    def test_unresolved_lists_non_owned_uncached_once(self):
        g, tables, access = self.make()
        remote = tables[1].vertices_sorted()
        assert access.unresolved(remote + remote) == remote  # deduped

    def test_neighbors_raises_before_admit(self):
        _, tables, access = self.make()
        v = tables[1].vertices_sorted()[0]
        with pytest.raises(KeyError):
            access.neighbors(v)
        with pytest.raises(RuntimeError):
            access.resolve([v])

    def test_admit_makes_vertices_resolvable(self):
        g, tables, access = self.make(capacity=16)
        remote = tables[1].vertices_sorted()
        access.admit((v, g.neighbors(v)) for v in remote)
        assert access.unresolved(remote) == []
        for v in remote:
            assert tuple(access.neighbors(v)) == tuple(g.neighbors(v))
        assert access.remote_messages == len(remote)

    def test_admit_skips_owned_vertices(self):
        g, tables, access = self.make()
        own = tables[0].vertices_sorted()[0]
        assert access.admit([(own, ())]) == 0
        assert list(access.neighbors(own)) == list(g.neighbors(own))

    def test_known_absent_owner_gap_resolves_empty(self):
        # Vertex 98 is even → partition 0 owns it under hash; it was
        # never loaded, so it provably does not exist: no fetch needed.
        _, _, access = self.make()
        assert access.known_absent(98)
        assert access.unresolved([98]) == []
        assert access.neighbors(98) == ()
        # An odd (non-owned) unknown vertex *does* need a fetch.
        assert not access.known_absent(99)
        assert access.unresolved([99]) == [99]

    def test_no_absence_shortcut_for_non_hash_partitioning(self):
        g = make_random_graph(12, 0.4, seed=8)
        tables = LocalVertexTable.partition(g, 2)
        access = RemoteGraphAccess(
            tables[0], RemoteVertexCache(4),
            partition_id=0, num_partitions=2, hash_partitioned=False,
        )
        assert not access.known_absent(98)
        assert access.unresolved([98]) == [98]

    def test_pins_survive_eviction(self):
        # A cache smaller than a task's pull list: pinned entries must
        # outlive LRU pressure until unpin (the anti-livelock property).
        g, tables, access = self.make(capacity=1)
        remote = tables[1].vertices_sorted()
        assert len(remote) >= 3
        access.admit(((v, g.neighbors(v)) for v in remote), pin=True)
        assert access.unresolved(remote) == []  # all pinned
        for v in remote:
            assert tuple(access.neighbors(v)) == tuple(g.neighbors(v))
        access.unpin(remote)
        # Only the cache's single slot survives the unpin.
        assert len(access.unresolved(remote)) == len(remote) - 1

    def test_pin_refcounts_release_once_per_unpin(self):
        g, tables, access = self.make(capacity=1)
        v = tables[1].vertices_sorted()[0]
        access.admit([(v, g.neighbors(v))], pin=True)
        access.pin([v])  # second task parks on the same vertex
        access.unpin([v])
        assert access.unresolved([v]) == []  # still pinned by task 2
        access.unpin([v])
        access.cache.put(-1, ())  # evicts v from the 1-slot cache
        assert access.unresolved([v]) == [v]

    def test_resident_entries_never_double_counts(self):
        g, tables, access = self.make(capacity=8)
        remote = tables[1].vertices_sorted()
        access.admit(((v, g.neighbors(v)) for v in remote), pin=True)
        # Every pinned entry also sits in the cache: counted once.
        assert access.resident_entries() == len(tables[0]) + len(remote)


class TestRemoteMisses:
    def test_remote_unknown_vertex_resolves_empty_and_is_cached(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        tables = LocalVertexTable.partition(g, 2)
        svc = DataService(0, tables, RemoteVertexCache(8))
        # 99 is odd → owned by machine 1, which never loaded it.
        assert svc.resolve([99]) == {99: []}
        assert svc.remote_messages == 1
        svc.resolve([99])  # second lookup must hit the cache
        assert svc.remote_messages == 1

    def test_owns_reports_only_loaded_vertices(self):
        g = Graph.from_edges([(0, 1)])
        tables = LocalVertexTable.partition(g, 2)
        assert tables[0].owns(0)
        assert not tables[0].owns(1)
        assert not tables[0].owns(40)
