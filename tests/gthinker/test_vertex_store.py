"""Tests for the partitioned vertex table and remote cache."""

from repro.graph.adjacency import Graph
from repro.gthinker.vertex_store import (
    DataService,
    LocalVertexTable,
    RemoteVertexCache,
    owner_of,
)

from conftest import make_random_graph


class TestPartition:
    def test_ownership_by_hash(self):
        g = make_random_graph(20, 0.3, seed=1)
        tables = LocalVertexTable.partition(g, 4)
        assert len(tables) == 4
        for m, table in enumerate(tables):
            for v in table.vertices_sorted():
                assert owner_of(v, 4) == m
        total = sum(len(t) for t in tables)
        assert total == g.num_vertices

    def test_adjacency_preserved(self):
        g = make_random_graph(15, 0.4, seed=2)
        tables = LocalVertexTable.partition(g, 3)
        for v in g.vertices():
            assert tables[owner_of(v, 3)].get(v) == g.neighbors(v)

    def test_spawn_order_sorted(self):
        g = make_random_graph(12, 0.3, seed=3)
        for table in LocalVertexTable.partition(g, 2):
            order = table.vertices_sorted()
            assert order == sorted(order)


class TestCache:
    def test_hit_miss_counting(self):
        cache = RemoteVertexCache(capacity=4)
        assert cache.get(1) is None
        cache.put(1, [2, 3])
        assert cache.get(1) == [2, 3]
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction(self):
        cache = RemoteVertexCache(capacity=2)
        cache.put(1, [])
        cache.put(2, [])
        cache.get(1)  # refresh 1 → 2 is LRU
        cache.put(3, [])
        assert cache.get(2) is None
        assert cache.get(1) == []
        assert cache.evictions == 1

    def test_capacity_floor(self):
        cache = RemoteVertexCache(capacity=0)
        cache.put(1, [])
        assert len(cache) == 1  # clamped to 1


class TestDataService:
    def test_local_reads_free(self):
        g = make_random_graph(10, 0.4, seed=5)
        tables = LocalVertexTable.partition(g, 2)
        cache = RemoteVertexCache(16)
        svc = DataService(0, tables, cache)
        local_vs = tables[0].vertices_sorted()
        out = svc.resolve(local_vs)
        assert svc.remote_messages == 0
        assert svc.local_reads == len(local_vs)
        for v in local_vs:
            assert out[v] == g.neighbors(v)

    def test_remote_fetch_counts_and_caches(self):
        g = make_random_graph(10, 0.4, seed=6)
        tables = LocalVertexTable.partition(g, 2)
        svc = DataService(0, tables, RemoteVertexCache(16))
        remote_vs = tables[1].vertices_sorted()
        svc.resolve(remote_vs)
        assert svc.remote_messages == len(remote_vs)
        svc.resolve(remote_vs)  # second round served from cache
        assert svc.remote_messages == len(remote_vs)

    def test_unknown_vertex_resolves_empty(self):
        g = Graph.from_edges([(0, 1)])
        tables = LocalVertexTable.partition(g, 1)
        svc = DataService(0, tables, RemoteVertexCache(4))
        assert svc.resolve([99]) == {99: []}


class TestCustomPartitioner:
    def test_partition_routes_via_custom_owner(self):
        from repro.gthinker.partition import range_partitioner

        g = make_random_graph(12, 0.4, seed=9)
        part = range_partitioner(g, 3)
        tables = LocalVertexTable.partition(g, 3, partitioner=part)
        for v in g.vertices():
            assert tables[part.owner(v)].owns(v)
        # Contiguous ranges: every table's vertices form one interval
        # of the sorted ID space.
        for t in tables:
            vs = t.vertices_sorted()
            if vs:
                assert vs == list(range(vs[0], vs[-1] + 1))

    def test_data_service_resolves_through_custom_owner(self):
        from repro.gthinker.partition import range_partitioner

        g = make_random_graph(12, 0.4, seed=10)
        part = range_partitioner(g, 2)
        tables = LocalVertexTable.partition(g, 2, partitioner=part)
        svc = DataService(
            0, tables, RemoteVertexCache(8), partitioner=part
        )
        out = svc.resolve(sorted(g.vertices()))
        for v in g.vertices():
            assert out[v] == g.neighbors(v)


class TestRemoteMisses:
    def test_remote_unknown_vertex_resolves_empty_and_is_cached(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        tables = LocalVertexTable.partition(g, 2)
        svc = DataService(0, tables, RemoteVertexCache(8))
        # 99 is odd → owned by machine 1, which never loaded it.
        assert svc.resolve([99]) == {99: []}
        assert svc.remote_messages == 1
        svc.resolve([99])  # second lookup must hit the cache
        assert svc.remote_messages == 1

    def test_owns_reports_only_loaded_vertices(self):
        g = Graph.from_edges([(0, 1)])
        tables = LocalVertexTable.partition(g, 2)
        assert tables[0].owns(0)
        assert not tables[0].owns(1)
        assert not tables[0].owns(40)
