"""Tests for decomposition budgets."""

import time

import pytest

from repro.core.options import MiningStats
from repro.gthinker.clock import (
    AlwaysExpired,
    NeverExpires,
    OpBudget,
    WallClockBudget,
    make_budget,
)


class TestOpBudget:
    def test_expires_after_ops(self):
        stats = MiningStats()
        budget = OpBudget(stats, ops=10)
        assert not budget.expired()
        stats.mining_ops += 10
        assert not budget.expired()  # boundary: strictly greater
        stats.mining_ops += 1
        assert budget.expired()

    def test_relative_to_current_count(self):
        stats = MiningStats(mining_ops=100)
        budget = OpBudget(stats, ops=5)
        stats.mining_ops = 105
        assert not budget.expired()
        stats.mining_ops = 106
        assert budget.expired()


class TestWallClock:
    def test_expires(self):
        budget = WallClockBudget(0.01)
        assert not WallClockBudget(10).expired()
        time.sleep(0.02)
        assert budget.expired()


class TestSentinels:
    def test_never_and_always(self):
        assert not NeverExpires().expired()
        assert AlwaysExpired().expired()


class TestFactory:
    def test_ops_budget(self):
        stats = MiningStats()
        b = make_budget("ops", 5, stats)
        assert isinstance(b, OpBudget)

    def test_wall_budget(self):
        b = make_budget("wall", 100.0, MiningStats())
        assert isinstance(b, WallClockBudget)

    def test_infinite_tau_never_expires(self):
        b = make_budget("ops", float("inf"), MiningStats())
        assert isinstance(b, NeverExpires)

    def test_unknown_unit(self):
        with pytest.raises(ValueError):
            make_budget("cycles", 5, MiningStats())
