"""Property tests for the simulated network itself.

The DST results are only as trustworthy as SimNet's fault semantics,
so those semantics get their own Hypothesis suite:

* every sent frame is delivered exactly once — unless the link tore
  (drop), the receiving endpoint closed, or duplication is enabled;
* per-direction FIFO holds whenever ``reorder`` is off, regardless of
  jitter;
* identical seed + plan + schedule reproduce the event log
  byte-for-byte.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gthinker.runtime import ChannelClosed
from repro.gthinker.sim import LinkFaults, SimNet


def drain(net: SimNet) -> None:
    while net.step():
        pass


def collector(sink: list):
    def handler(channel):
        sink.append(channel.recv())

    return handler


def schedule_sends(net: SimNet, src, payloads, times) -> list:
    """Schedule one send per payload; returns the sent-payload journal."""
    sent = []

    def sender(payload):
        def fire():
            try:
                src.send(payload)
                sent.append(payload)
            except ChannelClosed:
                pass  # link already torn: the send never happened

        return fire

    for i, (payload, at) in enumerate(zip(payloads, times)):
        net.call_at(at, f"send-{i}", sender(payload))
    return sent


# Virtual send times: integers scaled to [0, 1s] keep Hypothesis fast
# and shrinkable while still interleaving with latency and jitter.
TIMES = st.lists(st.integers(0, 1000), min_size=1, max_size=25)
SEEDS = st.integers(0, 2**31 - 1)


class TestExactlyOnce:
    @given(seed=SEEDS, raw_times=TIMES,
           jitter=st.sampled_from([0.0, 0.001, 0.05]))
    @settings(max_examples=60, deadline=None)
    def test_clean_link_delivers_every_frame_exactly_once(
        self, seed, raw_times, jitter
    ):
        net = SimNet(seed)
        a, b = net.link("l", LinkFaults(latency=0.002, jitter=jitter))
        got: list = []
        b.handler = collector(got)
        payloads = list(range(len(raw_times)))
        sent = schedule_sends(net, a, payloads, [t / 1000 for t in raw_times])
        drain(net)
        assert sorted(got) == sorted(sent) == payloads

    @given(seed=SEEDS, raw_times=TIMES)
    @settings(max_examples=60, deadline=None)
    def test_torn_link_loses_only_the_dropped_frame_and_later(
        self, seed, raw_times
    ):
        # drop_rate=1: the first send tears the link. Every frame sent
        # before the tear (none here) is delivered; the torn frame and
        # everything after it is not; both endpoints see EOF.
        net = SimNet(seed)
        a, b = net.link("l", LinkFaults(latency=0.002, drop_rate=1.0))
        got: list = []
        b.handler = collector(got)
        payloads = list(range(len(raw_times)))
        sent = schedule_sends(net, a, payloads, sorted(t / 1000 for t in raw_times))
        drain(net)
        assert got == [None]  # EOF only, never a payload
        # The tearing send returns normally (the frame just dies with
        # the connection); every later send raises ChannelClosed.
        assert sent == payloads[:1]
        assert a.link.cut and b.closed

    @given(seed=SEEDS, raw_times=st.lists(st.integers(0, 1000),
                                          min_size=2, max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_duplication_delivers_at_most_twice_and_respects_exempt(
        self, seed, raw_times
    ):
        exempt = {0}  # payload 0 plays the handshake role
        net = SimNet(seed, dup_exempt=lambda m: m in exempt)
        a, b = net.link("l", LinkFaults(latency=0.002, dup_rate=1.0))
        got: list = []
        b.handler = collector(got)
        payloads = list(range(len(raw_times)))
        schedule_sends(net, a, payloads, [t / 1000 for t in raw_times])
        drain(net)
        for p in payloads:
            expected = 1 if p in exempt else 2
            assert got.count(p) == expected, (
                f"payload {p}: {got.count(p)} deliveries, "
                f"wanted {expected}"
            )

    @given(seed=SEEDS)
    @settings(max_examples=30, deadline=None)
    def test_closed_endpoint_dead_drops_in_flight_frames(self, seed):
        net = SimNet(seed)
        a, b = net.link("l", LinkFaults(latency=0.01))
        got: list = []
        b.handler = collector(got)
        net.call_at(0.0, "send", lambda: a.send("in-flight"))
        net.call_at(0.001, "crash", b.close)  # closes before arrival
        drain(net)
        assert got == []
        assert any("dead_drop" in line for line in net.log)


class TestOrdering:
    @given(seed=SEEDS, raw_times=TIMES,
           jitter=st.sampled_from([0.001, 0.05, 0.5]))
    @settings(max_examples=60, deadline=None)
    def test_fifo_per_direction_despite_jitter(self, seed, raw_times, jitter):
        net = SimNet(seed)
        a, b = net.link("l", LinkFaults(latency=0.002, jitter=jitter))
        got: list = []
        b.handler = collector(got)
        payloads = list(range(len(raw_times)))
        schedule_sends(net, a, payloads, sorted(t / 1000 for t in raw_times))
        drain(net)
        assert got == payloads  # delivery order == send order

    @given(seed=SEEDS)
    @settings(max_examples=30, deadline=None)
    def test_reorder_lifts_fifo_somewhere_in_the_seed_space(self, seed):
        # With reorder on and heavy jitter, delivery order may differ
        # from send order; with it off it may not. Both runs share one
        # seed so the only variable is the FIFO clamp.
        def order(reorder: bool) -> list:
            net = SimNet(seed)
            a, b = net.link(
                "l", LinkFaults(latency=0.001, jitter=0.5, reorder=reorder)
            )
            got: list = []
            b.handler = collector(got)
            payloads = list(range(10))
            schedule_sends(net, a, payloads, [i * 0.001 for i in range(10)])
            drain(net)
            return got

        assert order(reorder=False) == list(range(10))
        assert sorted(order(reorder=True)) == list(range(10))

    def test_wedge_buffers_then_replays_in_order(self):
        net = SimNet(0)
        a, b = net.link("l", LinkFaults(latency=0.001))
        got: list = []
        b.handler = collector(got)
        net.wedge(b)
        for i in range(5):
            net.call_at(i * 0.01, f"send-{i}", lambda i=i: a.send(i))
        net.call_at(0.2, "unwedge", lambda: net.unwedge(b))
        drain(net)
        assert got == list(range(5))
        assert any("stall" in line for line in net.log)
        assert any("replay" in line for line in net.log)


class TestDeterminism:
    @given(seed=SEEDS, raw_times=TIMES,
           drop=st.sampled_from([0.0, 0.3]),
           dup=st.sampled_from([0.0, 0.3]))
    @settings(max_examples=40, deadline=None)
    def test_identical_seed_and_schedule_reproduce_the_log(
        self, seed, raw_times, drop, dup
    ):
        def run() -> list[str]:
            net = SimNet(seed)
            a, b = net.link(
                "l",
                LinkFaults(latency=0.002, jitter=0.01,
                           drop_rate=drop, dup_rate=dup),
            )
            b.handler = collector([])
            payloads = list(range(len(raw_times)))
            schedule_sends(net, a, payloads, [t / 1000 for t in raw_times])
            drain(net)
            return net.log

        assert run() == run()

    @given(raw_times=st.lists(st.integers(0, 1000), min_size=3, max_size=10))
    @settings(max_examples=20, deadline=None)
    def test_different_seeds_eventually_diverge_under_faults(self, raw_times):
        # Sanity check that the RNG is actually consulted: with lossy
        # faults, some pair of seeds must produce different logs.
        def run(seed) -> tuple:
            net = SimNet(seed)
            a, b = net.link(
                "l", LinkFaults(latency=0.002, jitter=0.05, drop_rate=0.5)
            )
            b.handler = collector([])
            schedule_sends(net, a, list(range(len(raw_times))),
                           [t / 1000 for t in raw_times])
            drain(net)
            return tuple(net.log)

        assert len({run(s) for s in range(8)}) > 1


class TestChannelProtocol:
    def test_send_on_closed_channel_raises(self):
        net = SimNet(0)
        a, _b = net.link("l")
        a.close()
        with pytest.raises(ChannelClosed):
            a.send("x")

    def test_recv_without_delivery_raises_not_blocks(self):
        net = SimNet(0)
        a, _b = net.link("l")
        with pytest.raises(RuntimeError, match="cannot block"):
            a.recv()

    def test_close_delivers_eof_to_peer(self):
        net = SimNet(0)
        a, b = net.link("l")
        got: list = []
        b.handler = collector(got)
        a.close()
        drain(net)
        assert got == [None]
        assert b.closed  # recv(None) closed the peer too

    def test_partition_stalls_frames_until_heal(self):
        net = SimNet(0)
        a, b = net.link(
            "l", LinkFaults(latency=0.001), partitions=((0.0, 1.0),)
        )
        got: list = []
        arrivals: list[float] = []

        def handler(ch):
            got.append(ch.recv())
            arrivals.append(net.now)

        b.handler = handler
        net.call_at(0.5, "send", lambda: a.send("stalled"))
        drain(net)
        assert got == ["stalled"]
        assert arrivals[0] >= 1.0  # held until the window healed
