"""A failing application must abort the job loudly, never hang it."""

import pytest

from repro.core.options import MiningStats, ResultSink
from repro.gthinker.config import EngineConfig
from repro.gthinker.engine import GThinkerEngine
from repro.gthinker.task import ComputeOutcome, Task

from conftest import make_random_graph


class FaultyApp:
    """Spawns normally, explodes on the third compute call."""

    def __init__(self) -> None:
        self.sink = ResultSink()
        self.stats = MiningStats()
        self.calls = 0

    def spawn(self, vertex, adjacency, task_id):
        return Task(task_id=task_id, root=vertex, iteration=3, s=[vertex], ext=[])

    def compute(self, task, frontier, ctx):
        self.calls += 1
        if self.calls >= 3:
            raise ValueError("injected fault")
        return ComputeOutcome(finished=True)


class TestWorkerFailure:
    def test_threaded_job_raises_instead_of_hanging(self):
        g = make_random_graph(20, 0.3, seed=1)
        engine = GThinkerEngine(
            g, FaultyApp(), EngineConfig(num_machines=1, threads_per_machine=2)
        )
        with pytest.raises(RuntimeError, match="mining thread failed") as excinfo:
            engine.run()
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_serial_job_propagates_directly(self):
        g = make_random_graph(20, 0.3, seed=2)
        engine = GThinkerEngine(g, FaultyApp(), EngineConfig())
        with pytest.raises(ValueError, match="injected fault"):
            engine.run()

    def test_healthy_app_unaffected(self):
        from repro.gthinker.engine import mine_parallel

        g = make_random_graph(12, 0.5, seed=3)
        out = mine_parallel(
            g, 0.75, 3, EngineConfig(num_machines=1, threads_per_machine=2)
        )
        assert out.metrics.tasks_executed >= 0
