"""Worker/application failure semantics per backend.

In-process backends (serial, threaded) share fate with the app: a
failing compute() aborts the job loudly, never hangs it. The process
backend is supervised instead: worker failure costs a retry — and at
worst a quarantined task — never the run.
"""

import os

import pytest

from repro.core.options import MiningStats, ResultSink
from repro.gthinker.chaos import ErrorOnRootApp, FaultInjection, KillOnRootApp
from repro.gthinker.config import EngineConfig
from repro.gthinker.engine import GThinkerEngine
from repro.gthinker.engine_mp import MultiprocessEngine, mine_multiprocess
from repro.gthinker.task import ComputeOutcome, Task

from conftest import make_random_graph


class FaultyApp:
    """Spawns normally, explodes on the third compute call."""

    def __init__(self) -> None:
        self.sink = ResultSink()
        self.stats = MiningStats()
        self.calls = 0

    def spawn(self, vertex, adjacency, task_id):
        return Task(task_id=task_id, root=vertex, iteration=3, s=[vertex], ext=[])

    def compute(self, task, frontier, ctx):
        self.calls += 1
        if self.calls >= 3:
            raise ValueError("injected fault")
        return ComputeOutcome(finished=True)


class TestWorkerFailure:
    def test_threaded_job_raises_instead_of_hanging(self):
        g = make_random_graph(20, 0.3, seed=1)
        engine = GThinkerEngine(
            g, FaultyApp(), EngineConfig(num_machines=1, threads_per_machine=2)
        )
        with pytest.raises(RuntimeError, match="mining thread failed") as excinfo:
            engine.run()
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_serial_job_propagates_directly(self):
        g = make_random_graph(20, 0.3, seed=2)
        engine = GThinkerEngine(g, FaultyApp(), EngineConfig())
        with pytest.raises(ValueError, match="injected fault"):
            engine.run()

    def test_healthy_app_unaffected(self):
        from repro.gthinker.engine import mine_parallel

        g = make_random_graph(12, 0.5, seed=3)
        out = mine_parallel(
            g, 0.75, 3, EngineConfig(num_machines=1, threads_per_machine=2)
        )
        assert out.metrics.tasks_executed >= 0


def process_config(**overrides) -> EngineConfig:
    base = dict(
        backend="process", num_procs=2, batch_size=1, queue_capacity=4,
        max_attempts=2, retry_backoff=0.005, lease_slack=10.0,
    )
    base.update(overrides)
    return EngineConfig(**base)


class TestProcessWorkerFailure:
    """The process backend survives what kills a thread: the parent
    reclaims the dead worker's leases and respawns it."""

    start_method = os.environ.get("REPRO_MP_START_METHOD") or None

    def test_sigkilled_worker_does_not_kill_the_run(self):
        g = make_random_graph(20, 0.3, seed=4)
        out = mine_multiprocess(
            g, 0.75, 3, process_config(),
            start_method=self.start_method,
            fault_injection=FaultInjection(worker_id=0, after_batches=0),
        )
        assert out.metrics.workers_died == 1
        assert out.metrics.tasks_quarantined == 0

    def test_sigkill_recovery_matches_faultless_results(self):
        g = make_random_graph(20, 0.3, seed=5)
        clean = mine_multiprocess(g, 0.75, 3, process_config(),
                                  start_method=self.start_method)
        faulty = mine_multiprocess(
            g, 0.75, 3, process_config(),
            start_method=self.start_method,
            fault_injection=FaultInjection(worker_id=1, after_batches=2),
        )
        assert faulty.maximal == clean.maximal
        assert faulty.candidates == clean.candidates

    def test_app_exception_warns_instead_of_raising(self):
        """The same fault that aborts the threaded backend is survived
        here: raising compute() costs the poison task, not the job."""
        g = make_random_graph(8, 0.4, seed=6)
        poison = min(g.vertices())
        engine = MultiprocessEngine(
            g, ErrorOnRootApp(poison_root=poison),
            process_config(num_procs=1),
            start_method=self.start_method,
        )
        with pytest.warns(RuntimeWarning, match="will be retried or quarantined"):
            out = engine.run()
        assert out.metrics.tasks_quarantined >= 1
        assert poison in {t.root for t in engine.quarantined}
        assert engine.worker_errors  # full traceback kept for debugging

    def test_every_worker_slot_survives_a_kill(self):
        """Killing any single worker mid-run must never raise."""
        g = make_random_graph(16, 0.35, seed=7)
        for worker_id in range(2):
            out = mine_multiprocess(
                g, 0.75, 3, process_config(),
                start_method=self.start_method,
                fault_injection=FaultInjection(worker_id=worker_id, after_batches=1),
            )
            assert out.metrics.workers_died == 1

    def test_kill_mid_stream_never_wedges_peer_workers(self):
        """Regression: result channels must stay private per worker.

        With a shared result queue, a SIGKILL landing while the dying
        worker's feeder thread held the queue's write lock left the lock
        orphaned — every surviving and respawned worker then blocked in
        `put` until its lease expired, and the pool death-spiralled
        (workers_died ≈ attempts × tasks, everything quarantined, empty
        results). The race window is scheduling-dependent, so run the
        scenario repeatedly; with per-incarnation pipes every iteration
        must cost exactly the one injected death and nothing else.
        """
        g = make_random_graph(10, 0.47, seed=9)
        config = process_config(lease_slack=2.0, max_attempts=3)
        clean = mine_multiprocess(g, 0.75, 4, config,
                                  start_method=self.start_method)
        for _ in range(12):
            out = mine_multiprocess(
                g, 0.75, 4, config,
                start_method=self.start_method,
                fault_injection=FaultInjection(worker_id=1, after_batches=2),
            )
            assert out.maximal == clean.maximal
            assert out.metrics.tasks_quarantined == 0
            assert out.metrics.workers_died <= 1

    def test_repeated_poison_quarantines_not_loops(self):
        """A deterministic killer must converge to quarantine, not an
        infinite respawn-retry loop."""
        g = make_random_graph(6, 0.5, seed=8)
        poison = min(g.vertices())
        engine = MultiprocessEngine(
            g, KillOnRootApp(poison_root=poison),
            process_config(num_procs=1, max_attempts=3, retry_backoff=0.002),
            start_method=self.start_method,
        )
        out = engine.run()
        assert engine.leases.quarantined_ids.count(0) == 1
        attempts = [a for tid, a, _ in engine.retry_schedule if tid == 0]
        assert attempts == [1, 2]  # then the third strike quarantines
        assert out.metrics.workers_died >= 3
