"""Tests for ``repro trace-report`` (repro.gthinker.obs.report).

Three layers:

1. a **golden-file test** over a small committed trace, pinning every
   derived number (timelines, phases, faults, slowest tasks);
2. **CLI behaviour** — text and ``--json`` output, error paths;
3. the **acceptance property** — a real 2-worker cluster chaos run's
   fault and steal counters, reproduced from its trace *alone*, must
   equal the run's own ``EngineMetrics`` exactly.
"""

import json
import os

import pytest
from conftest import make_random_graph

from repro.gthinker.chaos import FaultInjection
from repro.gthinker.cluster import mine_cluster
from repro.gthinker.config import EngineConfig
from repro.gthinker.engine import mine_parallel
from repro.gthinker.obs.report import (
    build_report,
    format_report,
    load_trace,
    report_cli,
    report_to_json,
    stream_label,
)
from repro.gthinker.tracing import Tracer

GOLDEN = os.path.join(os.path.dirname(__file__), "data", "golden_trace.jsonl")


class TestLoadTrace:
    def test_reads_events_and_skips_blanks(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"seq": 0, "kind": "spawn"}\n\n{"seq": 1, "kind": "finish"}\n')
        events = load_trace(path)
        assert [e["kind"] for e in events] == ["spawn", "finish"]

    def test_bad_line_reports_line_number(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"seq": 0, "kind": "spawn"}\nnot json\n')
        with pytest.raises(ValueError, match=r":2: not a JSON trace line"):
            load_trace(path)


class TestStreamLabel:
    def test_labels(self):
        assert stream_label(-1, -1) == "coordinator"
        assert stream_label(-1, 3) == "coordinator"
        assert stream_label(2, -1) == "m2"
        assert stream_label(0, 1) == "m0/t1"


class TestGoldenTrace:
    @pytest.fixture()
    def report(self):
        return build_report(load_trace(GOLDEN), path=GOLDEN)

    def test_event_and_kind_counts(self, report):
        assert report.events == 21
        assert report.kinds == {
            "execute": 2, "finish": 2, "progress": 1, "spawn": 2,
            "span_begin": 4, "span_end": 4, "steal_planned": 1,
            "steal_received": 1, "steal_sent": 1, "task_quarantined": 1,
            "task_retried": 1, "worker_died": 1,
        }
        assert report.unknown_kinds == {}

    def test_worker_timelines(self, report):
        rows = {w.worker: w for w in report.workers}
        assert set(rows) == {"coordinator", "m0/t0", "m1/t0"}
        m0 = rows["m0/t0"]
        assert (m0.events, m0.executes, m0.finishes, m0.spawns) == (8, 1, 1, 2)
        assert m0.mine_seconds == pytest.approx(0.025)
        assert m0.mine_spans == 1
        assert (m0.first_seq, m0.last_seq) == (0, 7)
        m1 = rows["m1/t0"]
        assert (m1.events, m1.executes, m1.finishes) == (6, 1, 1)
        assert m1.mine_seconds == pytest.approx(0.010)
        assert m1.spill_refills == 1
        assert (m1.first_seq, m1.last_seq) == (8, 20)
        coord = rows["coordinator"]
        assert coord.events == 7  # all machine=-1 control-plane events

    def test_phase_breakdown(self, report):
        assert report.phases == {
            "batch_mine": {"count": 2, "seconds": pytest.approx(0.035)},
            "root_spawn": {"count": 1, "seconds": pytest.approx(0.0004)},
            "spill_refill": {"count": 1, "seconds": pytest.approx(0.0009)},
        }

    def test_fault_counts_sum_sizes(self, report):
        f = report.faults
        assert f.workers_died == 1
        assert f.tasks_retried == 2  # one event, size=2
        assert f.tasks_quarantined == 1
        assert (f.steals_planned, f.steals_sent, f.steals_received) == (1, 1, 1)

    def test_slowest_tasks_ranked(self, report):
        assert [(s.task_id, s.worker) for s in report.slowest] == [
            (0, "m0/t0"), (1, "m1/t0"),
        ]
        assert report.slowest[0].seconds == pytest.approx(0.025)

    def test_progress_samples(self, report):
        assert report.progress_samples == 1
        assert report.last_progress["done"] == "2"
        assert report.last_progress["died"] == "1"

    def test_top_k_truncates(self):
        report = build_report(load_trace(GOLDEN), top_k=1)
        assert len(report.slowest) == 1
        assert report.slowest[0].task_id == 0

    def test_format_report_sections(self, report):
        text = format_report(report)
        assert "== per-worker timeline ==" in text
        assert "== phase time (spans) ==" in text
        assert "== faults & steals ==" in text
        assert "== slowest tasks (batch_mine) ==" in text
        assert "workers_died=1 tasks_retried=2 tasks_quarantined=1" in text
        assert "progress samples: 1" in text

    def test_json_schema_shape(self, report):
        payload = report_to_json(report)
        assert set(payload) == {
            "instance", "cpu_count", "rows", "phases", "faults",
            "slowest_tasks", "fetches",
        }
        # The golden trace predates the distributed vertex store: no
        # fetch events, so every counter is zero (and the text report
        # omits the section entirely).
        assert set(payload["fetches"]) == {
            "requests", "served", "vertices_requested", "vertices_served",
        }
        assert all(v == 0 for v in payload["fetches"].values())
        assert payload["instance"]["events"] == 21
        assert {row["worker"] for row in payload["rows"]} == {
            "coordinator", "m0/t0", "m1/t0"
        }
        assert payload["faults"]["tasks_retried"] == 2
        # The whole payload must be JSON-serializable as-is.
        json.dumps(payload)


class TestReportCli:
    def test_text_output(self, capsys):
        assert report_cli([GOLDEN]) == 0
        out = capsys.readouterr().out
        assert "== per-worker timeline ==" in out
        assert "m0/t0" in out

    def test_json_to_stdout(self, capsys):
        assert report_cli([GOLDEN, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["instance"]["events"] == 21

    def test_json_to_file(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        assert report_cli([GOLDEN, "--json", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["faults"]["workers_died"] == 1
        assert capsys.readouterr().out == ""

    def test_missing_file_is_error(self, tmp_path, capsys):
        assert report_cli([str(tmp_path / "absent.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_corrupt_file_is_error(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("{broken\n")
        assert report_cli([str(path)]) == 2
        assert ":1: not a JSON trace line" in capsys.readouterr().err

    def test_dispatched_from_main_cli(self, capsys):
        from repro.cli import main

        assert main(["trace-report", GOLDEN]) == 0
        assert "== faults & steals ==" in capsys.readouterr().out


class TestRoundTripFromRealRuns:
    def test_threaded_trace_report_matches_metrics(self, tmp_path):
        graph = make_random_graph(14, 0.5, seed=5)
        config = EngineConfig(num_machines=2, threads_per_machine=2,
                              tau_split=3, tau_time=50, decompose="timed")
        tracer = Tracer()
        out = mine_parallel(graph, 0.75, 3, config, tracer=tracer)
        path = tmp_path / "run.jsonl"
        tracer.dump_jsonl(path)
        report = build_report(load_trace(path), path=str(path))
        assert report.unknown_kinds == {}
        assert sum(w.executes for w in report.workers) == report.kinds["execute"]
        assert report.kinds["spawn"] == out.metrics.tasks_spawned
        # Every quantum is spanned; a quantum may cover several compute
        # rounds, so batch_mine spans never exceed execute events.
        assert 1 <= report.phases["batch_mine"]["count"] <= report.kinds["execute"]
        assert report.kinds["finish"] <= report.kinds["execute"]

    def test_cluster_chaos_counters_reproduced_from_trace_alone(self, tmp_path):
        """The acceptance bar: a 2-worker cluster chaos run's
        workers_died / tasks_retried / steal counters, derived from the
        JSONL trace with no access to the run, equal EngineMetrics."""
        graph = make_random_graph(12, 0.5, seed=7)
        tracer = Tracer()
        out = mine_cluster(
            graph, 0.75, 3,
            config=EngineConfig(
                backend="cluster", num_procs=2, decompose="timed",
                tau_time=10, tau_split=3, queue_capacity=4, batch_size=2,
                heartbeat_period=0.02, heartbeat_timeout=5.0,
                cluster_chunk_size=1, max_attempts=5,
            ),
            tracer=tracer,
            fault_injection=FaultInjection(worker_id=0, after_batches=1),
            timeout=120.0,
        )
        path = tmp_path / "chaos.jsonl"
        tracer.dump_jsonl(path)
        faults = build_report(load_trace(path), path=str(path)).faults
        m = out.metrics
        assert faults.workers_died == m.workers_died
        assert faults.tasks_retried == m.tasks_retried
        assert faults.tasks_quarantined == m.tasks_quarantined
        assert faults.steals_sent == m.steals_sent
        assert faults.steals_received == m.steals_received
        assert faults.steals_planned == m.steals_planned
