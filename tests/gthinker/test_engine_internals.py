"""White-box tests for engine scheduling internals."""


from repro.core.options import ResultSink
from repro.gthinker.app_quasiclique import QuasiCliqueApp
from repro.gthinker.config import EngineConfig
from repro.gthinker.engine import GThinkerEngine
from repro.gthinker.task import Task
from repro.graph.adjacency import Graph

from conftest import make_random_graph


def make_engine(graph=None, **config_kwargs):
    graph = graph or make_random_graph(12, 0.5, seed=3)
    config = EngineConfig(**config_kwargs)
    app = QuasiCliqueApp(gamma=0.75, min_size=3, sink=ResultSink())
    return GThinkerEngine(graph, app, config)


def it3_task(task_id, ext_size):
    g = Graph.from_edges([(0, i) for i in range(1, ext_size + 1)])
    return Task(task_id=task_id, root=0, iteration=3, s=[0],
                ext=list(range(1, ext_size + 1)), graph=g)


class TestRouting:
    def test_big_task_goes_global(self):
        eng = make_engine(tau_split=4)
        machine = eng.machines[0]
        slot = machine.threads[0]
        eng.add_task(it3_task(0, ext_size=10), machine, slot)
        assert len(machine.qglobal) == 1
        assert len(slot.qlocal) == 0

    def test_small_task_goes_local(self):
        eng = make_engine(tau_split=4)
        machine = eng.machines[0]
        slot = machine.threads[0]
        eng.add_task(it3_task(0, ext_size=2), machine, slot)
        assert len(machine.qglobal) == 0
        assert len(slot.qlocal) == 1

    def test_global_queue_disabled_ablation(self):
        eng = make_engine(tau_split=4, use_global_queue=False)
        machine = eng.machines[0]
        slot = machine.threads[0]
        eng.add_task(it3_task(0, ext_size=10), machine, slot)
        assert len(machine.qglobal) == 0
        assert len(slot.qlocal) == 1


class TestSpawnBatch:
    def test_stops_at_big_task(self):
        # A graph whose lowest-ID vertex is a hub: spawning must stop
        # after routing the hub's (big) task to the global queue.
        edges = [(0, i) for i in range(1, 30)] + [(i, i + 1) for i in range(1, 29)]
        g = Graph.from_edges(edges)
        eng = make_engine(graph=g, tau_split=5, batch_size=8)
        machine = eng.machines[0]
        slot = machine.threads[0]
        eng._spawn_batch(machine, slot)
        assert len(machine.qglobal) == 1
        # Cursor advanced only past the vertices actually spawned.
        assert machine.spawn_pos <= 2

    def test_spawns_full_batch_of_small(self):
        g = Graph.from_edges([(i, i + 1) for i in range(0, 40, 2)])
        eng = make_engine(graph=g, tau_split=50, batch_size=4)
        machine = eng.machines[0]
        slot = machine.threads[0]
        eng._spawn_batch(machine, slot)
        assert len(slot.qlocal) + len(machine.qglobal) <= 4
        assert machine.spawn_pos >= 4


class TestTermination:
    def test_active_counter_balanced_after_run(self):
        eng = make_engine(decompose="timed", tau_time=5, time_unit="ops", tau_split=2)
        eng.run()
        assert eng._active == 0
        assert eng._done.is_set()
        assert all(m.spawn_exhausted() for m in eng.machines)

    def test_steal_application(self):
        eng = make_engine(num_machines=2, threads_per_machine=1, tau_split=1)
        src = eng.machines[0]
        slot = src.threads[0]
        for i in range(6):
            eng.add_task(it3_task(i, ext_size=5), src, slot)
        assert len(src.qglobal) == 6
        eng._apply_steals()
        assert len(eng.machines[1].qglobal) > 0
        assert eng.metrics.steals >= 1
        assert eng.metrics.stolen_tasks >= 1
