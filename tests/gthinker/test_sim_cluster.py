"""Deterministic-simulation tests of the cluster control plane.

These are the virtual-time ports of the real-TCP chaos scenarios in
test_cluster.py (which keeps one smoke-level TCP test per scenario):
the same shipping reactors, driven by :mod:`repro.gthinker.sim` under
explicit :class:`FaultPlan`s — so a crash can land *exactly* between a
steal request and its grant, rather than whenever the OS scheduler
happens to put it.

Every ``run_sim`` already asserts ledger invariants after each
delivered frame and oracle equality + metrics/trace consistency at
quiescence; a test here only needs ``report.ok`` plus scenario markers
proving the path it documents actually ran.
"""

from __future__ import annotations

from dataclasses import replace
import random

from repro.gthinker.sim import (
    FaultPlan,
    LinkFaults,
    PartitionWindow,
    WorkerFaults,
    run_sim,
)
from repro.gthinker.sim.harness import _sim_config


CLEAN = FaultPlan()


def sim_config(**overrides):
    cfg = _sim_config(random.Random(0), 2)
    return replace(cfg, **overrides) if overrides else cfg


def run_ok(seed, **kwargs):
    report = run_sim(seed, **kwargs)
    assert report.ok, f"seed {seed}: {report.failure}"
    return report


class TestSimOracle:
    def test_clean_plan_matches_serial_oracle(self):
        report = run_ok(0, plan=CLEAN, num_workers=2,
                        config=sim_config(), graph_seed=0)
        assert report.result.maximal  # the job actually mined something
        assert report.metrics.workers_died == 0

    def test_fuzz_smoke(self):
        # A slice of the CI sweep, kept small enough for tier-1.
        for seed in range(25):
            run_ok(seed)


class TestSimChaos:
    """Virtual-time ports of the TCP fault-tolerance scenarios."""

    def test_worker_crash_mid_job_reclaims_and_matches_oracle(self):
        # Port of test_sigkill_one_worker_mid_job: worker 1 (slowed so
        # it still holds leases) dies mid-job; the master must reclaim
        # and re-mine.
        plan = FaultPlan(
            workers=(WorkerFaults(worker=1, crash_at=0.3, speed=5.0),),
        )
        report = run_ok(1, plan=plan, num_workers=2,
                        config=sim_config(cluster_chunk_size=1),
                        graph_seed=1)
        m = report.metrics
        assert m.workers_died == 1
        assert m.tasks_retried >= 1
        assert m.tasks_quarantined == 0
        assert report.tracer.events(kind="worker_died")

    def test_crashed_worker_restarts_as_fresh_worker(self):
        # The TCP suite cannot test rejoin at all (a SIGKILLed process
        # stays dead); in virtual time the restart is one timer.
        plan = FaultPlan(
            workers=(WorkerFaults(worker=1, crash_at=0.2, restart_at=0.4,
                                  speed=5.0),),
        )
        report = run_ok(2, plan=plan, num_workers=2,
                        config=sim_config(cluster_chunk_size=1),
                        graph_seed=1)
        welcomed = {
            line.split("deliver ")[1].split(".")[0]
            for line in report.log
            if " deliver " in line and line.endswith("Welcome")
        }
        assert len(welcomed) == 3, welcomed  # 2 initial links + 1 rejoin
        assert report.metrics.workers_died == 1
        assert report.metrics.tasks_retried >= 1

    def test_wedged_worker_is_declared_dead_and_its_leases_reclaimed(self):
        # A wedge longer than heartbeat_timeout reads as a death even
        # though the socket never closes.
        plan = FaultPlan(workers=(WorkerFaults(worker=1, wedge_at=0.2),))
        report = run_ok(3, plan=plan, num_workers=2,
                        config=sim_config(cluster_chunk_size=1),
                        graph_seed=2)
        assert report.metrics.workers_died == 1
        assert any("heartbeat" in e.detail
                   for e in report.tracer.events(kind="worker_died"))

    def test_partition_healing_within_timeout_kills_nobody(self):
        # Frames stall for 1s < heartbeat_timeout (2s): the stall must
        # read as latency, not death.
        plan = FaultPlan(
            partitions=(PartitionWindow(start=0.2, end=1.2, workers=(1,)),),
        )
        report = run_ok(4, plan=plan, num_workers=2,
                        config=sim_config(cluster_chunk_size=1),
                        graph_seed=2)
        assert report.metrics.workers_died == 0

    def test_asymmetric_load_triggers_steals(self):
        # Port of test_asymmetric_load_triggers_observable_steals: a
        # 20x-straggler donor under an all-big config must shed work to
        # its idle peer through the master. (The straggler factor is
        # larger than the TCP port's: the cold-start vertex fetches
        # overlap part of the skew, so a milder donor finishes its
        # backlog before the steal period fires.)
        plan = FaultPlan(workers=(WorkerFaults(worker=1, speed=20.0),))
        report = run_ok(
            5, plan=plan, num_workers=2,
            config=sim_config(tau_split=0, steal_period_seconds=0.2),
            graph_seed=0,
        )
        m = report.metrics
        assert m.steals_planned >= 1
        assert m.steals_sent >= 1
        # steals_sent == steals_received is already asserted for every
        # run by the harness's metrics/trace consistency check.

    def test_fetch_faults_slow_and_duplicated(self):
        # Vertex-fetch traffic under its own fault knobs: slow fetches
        # keep tasks parked for visible virtual time, and duplicating
        # every fetch frame exercises the master's stateless re-serve
        # plus the worker's drop-by-request-id discipline. Oracle
        # equality (asserted by run_ok) proves no duplicated reply is
        # double-admitted and no parked task is lost.
        plan = FaultPlan(
            links={1: LinkFaults(latency=0.002, fetch_latency=0.02,
                                 fetch_dup_rate=1.0)},
        )
        report = run_ok(8, plan=plan, num_workers=2,
                        config=sim_config(cluster_chunk_size=1),
                        graph_seed=1)
        requested = report.tracer.events(kind="vertex_requested")
        served = report.tracer.events(kind="vertex_served")
        assert requested, "no remote vertex fetch happened"
        # Duplicated requests are re-served statelessly, so serves can
        # only meet or exceed the requests that survived the link.
        assert len(served) >= 1

    def test_tiny_cache_forces_evictions_but_not_livelock(self):
        # A 2-entry remote cache under an 8+-vertex graph must evict;
        # the pin overlay keeps every parked task's fetched entries
        # alive until its quantum, so the job still quiesces and
        # matches the oracle.
        report = run_ok(9, plan=CLEAN, num_workers=2,
                        config=sim_config(cache_capacity=2), graph_seed=2)
        assert report.metrics.remote_vertex_evictions >= 1
        assert all(n <= 11 for n in report.resident.values())

    def test_lossy_duplicating_link_changes_nothing(self):
        # Frame duplication on every non-handshake frame: dedup and the
        # stale-grant re-pend must absorb all of it.
        plan = FaultPlan(
            links={1: LinkFaults(latency=0.005, jitter=0.01, dup_rate=1.0)},
        )
        run_ok(6, plan=plan, num_workers=2,
               config=sim_config(cluster_chunk_size=1), graph_seed=3)

    def test_reordering_link_changes_nothing(self):
        # Harsher than TCP: per-link FIFO is lifted entirely.
        plan = FaultPlan(
            links={1: LinkFaults(latency=0.002, jitter=0.05, reorder=True)},
        )
        run_ok(7, plan=plan, num_workers=2,
               config=sim_config(cluster_chunk_size=1), graph_seed=4)


class TestDeterminism:
    def test_same_seed_reproduces_the_event_log_byte_for_byte(self):
        for seed in (0, 414):
            a, b = run_sim(seed), run_sim(seed)
            assert a.log == b.log
            assert a.ok == b.ok


class TestPinnedRegressions:
    def test_seed_414_duplicated_steal_request(self):
        """Found by `repro sim-fuzz`: a duplicated StealRequest frame
        made the donor evict a *second* batch for an already-answered
        request; the master dropped the resulting stale StealGrant and
        its payload — candidates {5,7,9,10} were permanently lost.
        Fixed by (a) donor-side request-id dedup and (b) re-pending
        stale grant payloads instead of dropping them."""
        run_ok(414)

    def test_partition_during_steal_with_stale_grant(self):
        """Satellite regression: an all-big (tau_split=0) job where the
        donor's link duplicates every frame and a partition window
        overlaps the steal period. Exercises (1) the
        enforce_window=False steal-forwarding path and (2) stale
        StealGrant absorption, and proves no candidate is lost or
        double-folded (run_ok asserts exact candidate-set equality
        against the serial oracle)."""
        cfg = sim_config(tau_split=0, steal_period_seconds=0.3)
        plan = FaultPlan(
            links={
                0: LinkFaults(latency=0.002),
                1: LinkFaults(latency=0.02, dup_rate=1.0),
            },
            default_link=LinkFaults(latency=0.002),
            partitions=(PartitionWindow(start=0.6, end=1.4, workers=(1,)),),
            workers=(WorkerFaults(worker=1, speed=10.0),),
        )
        report = run_ok(414, plan=plan, num_workers=2, config=cfg,
                        graph_seed=0)
        m = report.metrics
        assert m.steals_received >= 1, "enforce_window=False path not taken"
        assert report.stale_steal_grants >= 1, "no stale StealGrant absorbed"
        assert m.steals_sent == m.steals_received
