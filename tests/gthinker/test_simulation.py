"""Tests for the discrete-event simulated cluster."""

import random

import pytest

from repro.core.naive import enumerate_maximal_quasicliques
from repro.gthinker.config import EngineConfig
from repro.gthinker.simulation import simulate_cluster
from repro.graph.generators import planted_quasicliques

from conftest import GAMMAS, make_random_graph


def sim_config(**kw):
    base = dict(
        num_machines=1, threads_per_machine=1, tau_time=50,
        time_unit="ops", tau_split=4, decompose="timed",
    )
    base.update(kw)
    return EngineConfig(**base)


class TestCorrectness:
    @pytest.mark.parametrize("machines,threads", [(1, 1), (1, 4), (2, 2), (4, 2)])
    def test_matches_oracle(self, machines, threads):
        rng = random.Random(machines * 7 + threads)
        g = make_random_graph(11, 0.55, seed=machines * 3 + threads)
        gamma = rng.choice(GAMMAS)
        min_size = rng.randint(2, 4)
        out = simulate_cluster(
            g, gamma, min_size, sim_config(num_machines=machines, threads_per_machine=threads)
        )
        assert out.maximal == enumerate_maximal_quasicliques(g, gamma, min_size)


class TestDeterminism:
    def test_same_run_same_makespan(self):
        g = make_random_graph(14, 0.5, seed=8)
        a = simulate_cluster(g, 0.75, 3, sim_config(threads_per_machine=4))
        b = simulate_cluster(g, 0.75, 3, sim_config(threads_per_machine=4))
        assert a.makespan == b.makespan
        assert a.total_work == b.total_work
        assert a.maximal == b.maximal

    def test_total_work_independent_of_parallelism(self):
        # Same ops-based decomposition → identical task set at any scale.
        g = make_random_graph(14, 0.5, seed=8)
        works = {
            simulate_cluster(
                g, 0.75, 3, sim_config(threads_per_machine=t)
            ).total_work
            for t in (1, 2, 8)
        }
        assert len(works) == 1


class TestScalabilityShape:
    @pytest.fixture(scope="class")
    def workload(self):
        return planted_quasicliques(
            n=250, avg_degree=5, num_plants=5, plant_size=11, gamma=0.85, seed=4
        ).graph

    def test_more_threads_never_slower(self, workload):
        spans = []
        for t in (1, 2, 4, 8):
            out = simulate_cluster(
                workload, 0.8, 8, sim_config(threads_per_machine=t, tau_time=300)
            )
            spans.append(out.makespan)
        for a, b in zip(spans, spans[1:]):
            assert b <= a * 1.01  # allow scheduling noise at saturation

    def test_vertical_speedup_materializes(self, workload):
        one = simulate_cluster(workload, 0.8, 8, sim_config(tau_time=300))
        eight = simulate_cluster(
            workload, 0.8, 8, sim_config(threads_per_machine=8, tau_time=300)
        )
        assert one.makespan / eight.makespan > 2.0

    def test_utilization_bounded(self, workload):
        out = simulate_cluster(
            workload, 0.8, 8, sim_config(threads_per_machine=4, tau_time=300)
        )
        assert 0.0 < out.utilization <= 1.0 + 1e-9

    def test_horizontal_scaling_with_stealing(self, workload):
        # One thread per machine so machine count is the binding
        # constraint (at 4 threads the critical path already dominates).
        one = simulate_cluster(workload, 0.8, 8, sim_config(tau_time=300))
        four = simulate_cluster(
            workload, 0.8, 8,
            sim_config(num_machines=4, threads_per_machine=1, tau_time=300),
        )
        assert four.makespan < one.makespan * 0.7
        assert four.metrics.steals > 0, "expected big-task stealing activity"
        assert four.maximal == one.maximal


class TestGuards:
    def test_wall_clock_rejected(self):
        g = make_random_graph(6, 0.5, seed=1)
        with pytest.raises(ValueError, match="ops"):
            simulate_cluster(g, 0.75, 3, EngineConfig(time_unit="wall", tau_time=1))

    def test_message_cost_increases_makespan(self):
        g = make_random_graph(20, 0.4, seed=5)
        free = simulate_cluster(
            g, 0.75, 3, sim_config(num_machines=4, threads_per_machine=1)
        )
        costly = simulate_cluster(
            g, 0.75, 3,
            sim_config(num_machines=4, threads_per_machine=1, sim_message_cost=50.0),
        )
        assert costly.makespan > free.makespan
        assert costly.maximal == free.maximal
