"""Tests for engine tracing and scheduling-policy assertions."""

import json
import warnings as warnings_module

import pytest

from repro.core.options import ResultSink
from repro.gthinker.app_quasiclique import QuasiCliqueApp
from repro.gthinker.config import EngineConfig
from repro.gthinker.engine import GThinkerEngine
from repro.gthinker.simulation import SimulatedClusterEngine
from repro.gthinker.tracing import KINDS, OBS_KINDS, STEAL_KINDS, NullTracer, Tracer

from conftest import make_random_graph


def traced_run(graph=None, **config_kwargs):
    graph = graph or make_random_graph(14, 0.5, seed=5)
    config = EngineConfig(**config_kwargs)
    tracer = Tracer()
    app = QuasiCliqueApp(gamma=0.75, min_size=3, sink=ResultSink())
    engine = GThinkerEngine(graph, app, config, tracer=tracer)
    result = engine.run()
    return tracer, result, engine


class TestTracerBasics:
    def test_emit_and_filter(self):
        t = Tracer()
        t.emit("spawn", 1, machine=0)
        t.emit("execute", 1, machine=0)
        t.emit("execute", 2, machine=1)
        assert len(t) == 3
        assert len(t.events(kind="execute")) == 2
        assert len(t.events(task_id=1)) == 2
        assert t.counts() == {"spawn": 1, "execute": 2}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Tracer().emit("teleport", 1)

    def test_unknown_kind_strict_env_var(self, monkeypatch):
        monkeypatch.delenv("PYTEST_CURRENT_TEST", raising=False)
        monkeypatch.setenv("REPRO_STRICT_TRACE", "1")
        with pytest.raises(ValueError):
            Tracer().emit("teleport", 1)

    def test_unknown_kind_warns_once_in_production(self, monkeypatch):
        from repro.gthinker import tracing

        monkeypatch.delenv("PYTEST_CURRENT_TEST", raising=False)
        monkeypatch.delenv("REPRO_STRICT_TRACE", raising=False)
        monkeypatch.setattr(tracing, "_warned_kinds", set())
        t = Tracer()
        with pytest.warns(RuntimeWarning, match="teleport"):
            t.emit("teleport", 1)
        # The event is still recorded — tracing must not lose data.
        assert t.counts() == {"teleport": 1}
        # Second emission of the same kind is silent.
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            t.emit("teleport", 2)
        assert len(t) == 2

    def test_bounded(self):
        t = Tracer(capacity=5)
        for i in range(20):
            t.emit("execute", i)
        assert len(t) == 5
        assert t.events()[0].task_id == 15

    def test_dump_jsonl(self, tmp_path):
        t = Tracer()
        t.emit("spawn", 7, machine=2, detail="root=7")
        path = tmp_path / "trace.jsonl"
        assert t.dump_jsonl(path) == 1
        event = json.loads(path.read_text())
        assert event["kind"] == "spawn" and event["detail"] == "root=7"

    def test_null_tracer_is_silent(self):
        nt = NullTracer()
        nt.emit("anything", 1)
        assert len(nt) == 0
        assert not nt.enabled
        assert nt.counts() == {}


class TestPolicyViaTrace:
    def test_lifecycle_ordering_per_task(self):
        tracer, _, _ = traced_run(decompose="timed", tau_time=10,
                                  time_unit="ops", tau_split=3)
        # Span/progress events are an observability overlay on top of the
        # lifecycle (a batch_mine span repeats its task's id after the
        # fact; root_spawn spans carry task_id=-1) — the policy ordering
        # is about the scheduling events only.
        events = [e for e in tracer.events() if e.kind not in OBS_KINDS]
        first_kind_per_task: dict[int, str] = {}
        routed: set[int] = set()
        executed_before_route: list[int] = []
        for e in events:
            if e.kind in ("route_global", "route_local"):
                routed.add(e.task_id)
            if e.kind == "execute" and e.task_id not in routed:
                executed_before_route.append(e.task_id)
            first_kind_per_task.setdefault(e.task_id, e.kind)
        assert not executed_before_route, "tasks must be routed before execution"
        # Every task's first event is its spawn or its routing.
        for task_id, kind in first_kind_per_task.items():
            assert kind in ("spawn", "route_global", "route_local")

    def test_every_spawn_finishes(self):
        tracer, _, engine = traced_run(decompose="none")
        spawned = {e.task_id for e in tracer.events(kind="spawn")}
        finished = {e.task_id for e in tracer.events(kind="finish")}
        assert spawned <= finished
        assert engine._active == 0

    def test_decompose_events_match_metrics(self):
        tracer, result, _ = traced_run(
            decompose="timed", tau_time=0, time_unit="ops", tau_split=2
        )
        decomposed = tracer.events(kind="decompose")
        assert len(decomposed) == result.metrics.tasks_decomposed

    def test_big_tasks_route_global(self):
        tracer, _, _ = traced_run(tau_split=2, decompose="size")
        assert tracer.events(kind="route_global"), (
            "expected some big tasks with tau_split=2"
        )

    def test_steals_traced(self):
        g = make_random_graph(30, 0.4, seed=9)
        config = EngineConfig(num_machines=2, threads_per_machine=1, tau_split=1)
        tracer = Tracer()
        app = QuasiCliqueApp(gamma=0.75, min_size=3, sink=ResultSink())
        engine = GThinkerEngine(g, app, config, tracer=tracer)
        # Stage a skewed global queue and apply one stealing round.
        src = engine.machines[0]
        slot = src.threads[0]
        from repro.graph.adjacency import Graph
        from repro.gthinker.task import Task

        tg = Graph.from_edges([(0, i) for i in range(1, 6)])
        for i in range(6):
            engine.add_task(
                Task(task_id=100 + i, root=0, iteration=3, s=[0],
                     ext=[1, 2, 3, 4, 5], graph=tg),
                src, slot,
            )
        engine._apply_steals()
        assert tracer.events(kind="steal")
        # One full observability triple per stolen task: planned by the
        # coordinator, sent by the donor, received by the recipient.
        assert tracer.events(kind="steal_planned")
        sent = tracer.events(kind="steal_sent")
        received = tracer.events(kind="steal_received")
        assert len(sent) == len(received) == len(tracer.events(kind="steal"))
        metrics = engine.metrics
        assert metrics.steals_planned >= 1
        assert metrics.steals_sent == len(sent)
        assert metrics.steals_received == len(received)

    def test_trace_off_by_default(self):
        g = make_random_graph(10, 0.5, seed=2)
        app = QuasiCliqueApp(gamma=0.75, min_size=3, sink=ResultSink())
        engine = GThinkerEngine(g, app, EngineConfig())
        engine.run()
        assert isinstance(engine.tracer, NullTracer)


class TestSimulatorTracing:
    """The simulator traces through the shared scheduler core, so the
    same workload must produce the same event vocabulary as the threaded
    engine — not merely "some events"."""

    WORKLOAD = dict(
        decompose="timed", tau_time=10, time_unit="ops", tau_split=3,
        num_machines=2, threads_per_machine=2, queue_capacity=4, batch_size=2,
    )

    def traced_pair(self):
        g = make_random_graph(16, 0.5, seed=11)
        app_args = dict(gamma=0.75, min_size=3)
        eng_tracer, sim_tracer = Tracer(), Tracer()
        GThinkerEngine(
            g, QuasiCliqueApp(**app_args, sink=ResultSink()),
            EngineConfig(**self.WORKLOAD), tracer=eng_tracer,
        ).run()
        SimulatedClusterEngine(
            g, QuasiCliqueApp(**app_args, sink=ResultSink()),
            EngineConfig(**self.WORKLOAD), tracer=sim_tracer,
        ).run()
        return eng_tracer, sim_tracer

    def test_vocabularies_match(self):
        eng_tracer, sim_tracer = self.traced_pair()
        eng_kinds = set(eng_tracer.counts())
        sim_kinds = set(sim_tracer.counts())
        # Steal rounds fire on wall-clock time in the threaded engine but
        # on virtual time in the simulator (and on real network round
        # trips in the cluster runtime), so only those kinds may differ.
        # Observability kinds are timing-dependent too (which spans fire
        # depends on wall-clock spill/steal behaviour), so they are
        # likewise excluded from the vocabulary equality.
        timing_dependent = STEAL_KINDS | OBS_KINDS
        assert sim_kinds - timing_dependent == eng_kinds - timing_dependent
        # The workload is shaped to exercise the whole policy surface.
        assert {"spawn", "route_global", "route_local", "pop_global",
                "pop_local", "execute", "decompose", "finish"} <= sim_kinds
        assert sim_kinds <= set(KINDS)
        assert eng_kinds <= set(KINDS)

    def test_same_tasks_spawned_and_finished(self):
        eng_tracer, sim_tracer = self.traced_pair()
        for tracer in (eng_tracer, sim_tracer):
            spawned = {e.task_id for e in tracer.events(kind="spawn")}
            finished = {e.task_id for e in tracer.events(kind="finish")}
            assert spawned <= finished
        assert len(eng_tracer.events(kind="spawn")) == len(
            sim_tracer.events(kind="spawn")
        )

    def test_simulator_trace_off_by_default(self):
        g = make_random_graph(10, 0.5, seed=2)
        app = QuasiCliqueApp(gamma=0.75, min_size=3, sink=ResultSink())
        sim = SimulatedClusterEngine(g, app, EngineConfig(**self.WORKLOAD))
        sim.run()
        assert isinstance(sim.core.tracer, NullTracer)


class TestEmittedVocabulary:
    """The KINDS tuple and the emit sites in src/ must agree exactly."""

    @staticmethod
    def _emitted_literals():
        import re
        from pathlib import Path

        import repro

        src_root = Path(repro.__file__).resolve().parent
        pattern = re.compile(r"""\.emit\(\s*["']([a-z_]+)["']""")
        emitted: dict[str, set[str]] = {}
        for path in src_root.rglob("*.py"):
            for match in pattern.finditer(path.read_text()):
                emitted.setdefault(match.group(1), set()).add(path.name)
        return emitted

    def test_every_emitted_kind_is_declared(self):
        emitted = self._emitted_literals()
        unknown = set(emitted) - set(KINDS)
        assert not unknown, (
            f"kinds emitted in src/ but missing from tracing.KINDS: "
            f"{ {k: sorted(emitted[k]) for k in unknown} }"
        )

    def test_every_declared_kind_has_an_emit_site(self):
        emitted = self._emitted_literals()
        dead = set(KINDS) - set(emitted)
        assert not dead, (
            f"kinds declared in tracing.KINDS but never emitted: {sorted(dead)}"
        )
