"""Hypothesis property tests for Task serialization and routing."""

import itertools
import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.adjacency import Graph
from repro.gthinker.task import Task


@st.composite
def tasks(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    root = draw(st.integers(min_value=0, max_value=n - 1))
    s = sorted(draw(st.sets(st.integers(min_value=0, max_value=n), max_size=5)) | {root})
    ext = sorted(draw(st.sets(st.integers(min_value=0, max_value=n), max_size=10)))
    iteration = draw(st.sampled_from([1, 2, 3]))
    building = None
    if iteration < 3:
        building = {root: set(ext)}
    return Task(
        task_id=draw(st.integers(min_value=0, max_value=10_000)),
        root=root,
        iteration=iteration,
        s=s,
        ext=ext,
        building=building,
        pulls=list(ext),
        generation=draw(st.integers(min_value=0, max_value=5)),
    )


@given(task=tasks())
@settings(max_examples=80, deadline=None)
def test_encode_decode_round_trip(task):
    back = Task.decode(task.encode())
    assert back.task_id == task.task_id
    assert back.root == task.root
    assert back.iteration == task.iteration
    assert back.s == task.s
    assert back.ext == task.ext
    assert back.building == task.building
    assert back.pulls == task.pulls
    assert back.generation == task.generation


@given(task=tasks(), tau=st.integers(min_value=0, max_value=40))
@settings(max_examples=80, deadline=None)
def test_is_big_monotone_in_tau(task, tau):
    # Raising the threshold can only demote tasks from big to small.
    if task.is_big(tau + 1):
        assert task.is_big(tau)


@given(task=tasks())
@settings(max_examples=40, deadline=None)
def test_round_trip_preserves_bigness(task):
    back = Task.decode(task.encode())
    for tau in (0, 3, 10, 100):
        assert back.is_big(tau) == task.is_big(tau)


@st.composite
def big_remainder_tasks(draw):
    """Iteration-3 tasks carrying a materialized subgraph — the shape a
    time-delayed decomposition remainder has when the process backend
    ships it from a worker back to the parent scheduler."""
    n = draw(st.integers(min_value=4, max_value=16))
    pairs = list(itertools.combinations(range(n), 2))
    mask = draw(st.lists(st.booleans(), min_size=len(pairs), max_size=len(pairs)))
    graph = Graph.from_edges(
        [p for p, keep in zip(pairs, mask) if keep], vertices=range(n)
    )
    root = draw(st.integers(min_value=0, max_value=n - 1))
    s = sorted(draw(st.sets(st.integers(min_value=0, max_value=n - 1), max_size=4)) | {root})
    ext = sorted(draw(st.sets(st.integers(min_value=0, max_value=n - 1), max_size=n)))
    return Task(
        task_id=draw(st.integers(min_value=0, max_value=10_000)),
        root=root,
        iteration=3,
        s=s,
        ext=ext,
        graph=graph,
        one_hop=set(s) | set(ext),
        generation=draw(st.integers(min_value=1, max_value=5)),
    )


@given(task=big_remainder_tasks())
@settings(max_examples=40, deadline=None)
def test_big_remainder_pickle_round_trip(task):
    """The process backend moves tasks with plain pickle over queues;
    a partially-mined remainder must survive with its subgraph intact."""
    for back in (Task.decode(task.encode()), pickle.loads(pickle.dumps(task))):
        assert back.task_id == task.task_id
        assert back.root == task.root
        assert back.iteration == 3
        assert back.s == task.s
        assert back.ext == task.ext
        assert back.one_hop == task.one_hop
        assert back.generation == task.generation
        assert back.graph == task.graph
        assert back.graph is not task.graph
        assert back.graph.num_edges == task.graph.num_edges
        for v in back.graph.vertices():
            assert sorted(back.graph.neighbors(v)) == sorted(task.graph.neighbors(v))
