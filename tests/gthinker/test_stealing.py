"""Tests for the big-task stealing planner."""

import random

from repro.gthinker.stealing import plan_steals


class TestPlanInvariants:
    def test_balanced_no_moves(self):
        assert plan_steals([5, 5, 5], batch_size=4) == []

    def test_single_machine_no_moves(self):
        assert plan_steals([100], batch_size=4) == []

    def test_skewed_load_moves_toward_average(self):
        moves = plan_steals([12, 0, 0, 0], batch_size=4)
        assert moves
        for m in moves:
            assert m.src == 0
            assert m.count <= 4

    def test_batch_cap(self):
        moves = plan_steals([1000, 0], batch_size=7)
        assert all(m.count <= 7 for m in moves)

    def test_at_most_one_move_per_machine(self):
        counts = [30, 20, 1, 0, 0]
        moves = plan_steals(counts, batch_size=8)
        donors = [m.src for m in moves]
        recipients = [m.dst for m in moves]
        assert len(donors) == len(set(donors))
        assert len(recipients) == len(set(recipients))
        assert not set(donors) & set(recipients)

    def test_moves_reduce_imbalance(self):
        rng = random.Random(3)
        for _ in range(25):
            counts = [rng.randint(0, 40) for _ in range(rng.randint(2, 8))]
            before = max(counts) - min(counts)
            moves = plan_steals(counts, batch_size=5)
            after = counts[:]
            for m in moves:
                after[m.src] -= m.count
                after[m.dst] += m.count
            assert sum(after) == sum(counts), "tasks must be conserved"
            if moves:
                assert max(after) - min(after) <= before

    def test_donor_never_goes_below_average(self):
        counts = [10, 0]
        moves = plan_steals(counts, batch_size=100)
        # avg = 5; donor gives at most surplus (5).
        assert all(m.count <= 5 for m in moves)

    def test_zero_batch(self):
        assert plan_steals([10, 0], batch_size=0) == []


class TestPlanEdgeCases:
    def test_empty_input_no_moves(self):
        assert plan_steals([], batch_size=4) == []

    def test_two_machines_one_unit_apart_no_thrash(self):
        # avg = 0.5: donor surplus int(1 - 0.5) = 0 → nothing moves.
        # One task of imbalance is not worth a network round-trip.
        assert plan_steals([1, 0], batch_size=4) == []

    def test_fractional_average_recipient_deficit_rounds_up(self):
        # counts [7, 0, 0]: avg 2.33, donor surplus int(4.67) = 4,
        # recipient deficit ceil(2.33) = 3 → one move of 3.
        moves = plan_steals([7, 0, 0], batch_size=10)
        assert moves == [type(moves[0])(src=0, dst=1, count=3)]

    def test_more_donors_than_recipients(self):
        # Two donors, one recipient: only one pairing this period; the
        # second donor waits for the next period rather than flooding.
        moves = plan_steals([10, 10, 0], batch_size=2)
        assert len(moves) == 1
        assert moves[0].dst == 2

    def test_batch_size_one_still_moves(self):
        moves = plan_steals([9, 0], batch_size=1)
        assert moves and moves[0].count == 1
