"""Tests for the big-task stealing planner."""

import random

from repro.gthinker.stealing import plan_steals


class TestPlanInvariants:
    def test_balanced_no_moves(self):
        assert plan_steals([5, 5, 5], batch_size=4) == []

    def test_single_machine_no_moves(self):
        assert plan_steals([100], batch_size=4) == []

    def test_skewed_load_moves_toward_average(self):
        moves = plan_steals([12, 0, 0, 0], batch_size=4)
        assert moves
        for m in moves:
            assert m.src == 0
            assert m.count <= 4

    def test_batch_cap(self):
        moves = plan_steals([1000, 0], batch_size=7)
        assert all(m.count <= 7 for m in moves)

    def test_at_most_one_move_per_machine(self):
        counts = [30, 20, 1, 0, 0]
        moves = plan_steals(counts, batch_size=8)
        donors = [m.src for m in moves]
        recipients = [m.dst for m in moves]
        assert len(donors) == len(set(donors))
        assert len(recipients) == len(set(recipients))
        assert not set(donors) & set(recipients)

    def test_moves_reduce_imbalance(self):
        rng = random.Random(3)
        for _ in range(25):
            counts = [rng.randint(0, 40) for _ in range(rng.randint(2, 8))]
            before = max(counts) - min(counts)
            moves = plan_steals(counts, batch_size=5)
            after = counts[:]
            for m in moves:
                after[m.src] -= m.count
                after[m.dst] += m.count
            assert sum(after) == sum(counts), "tasks must be conserved"
            if moves:
                assert max(after) - min(after) <= before

    def test_donor_never_goes_below_average(self):
        counts = [10, 0]
        moves = plan_steals(counts, batch_size=100)
        # avg = 5; donor gives at most surplus (5).
        assert all(m.count <= 5 for m in moves)

    def test_zero_batch(self):
        assert plan_steals([10, 0], batch_size=0) == []
