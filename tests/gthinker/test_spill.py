"""Tests for disk spilling and the bounded task queue."""

import os

import pytest

from repro.gthinker.spill import SpillableQueue, SpillFileList
from repro.gthinker.task import Task


def make_tasks(n, start=0):
    return [Task(task_id=i, root=i, iteration=3, s=[i], ext=[]) for i in range(start, start + n)]


class TestSpillFileList:
    def test_spill_and_load_round_trip(self, tmp_path):
        spill = SpillFileList(str(tmp_path), "test")
        tasks = make_tasks(5)
        spill.spill(tasks)
        assert len(spill) == 1
        loaded = spill.load_batch()
        assert [t.task_id for t in loaded] == [0, 1, 2, 3, 4]
        assert len(spill) == 0

    def test_lifo_file_order(self, tmp_path):
        spill = SpillFileList(str(tmp_path), "test")
        spill.spill(make_tasks(2, start=0))
        spill.spill(make_tasks(2, start=10))
        first = spill.load_batch()
        assert [t.task_id for t in first] == [10, 11]

    def test_files_deleted_after_load(self, tmp_path):
        spill = SpillFileList(str(tmp_path), "test")
        path = spill.spill(make_tasks(3))
        assert os.path.exists(path)
        spill.load_batch()
        assert not os.path.exists(path)

    def test_empty_load(self, tmp_path):
        spill = SpillFileList(str(tmp_path), "test")
        assert spill.load_batch() == []

    def test_byte_accounting(self, tmp_path):
        spill = SpillFileList(str(tmp_path), "test")
        spill.spill(make_tasks(4))
        assert spill.bytes_written > 0
        assert spill.bytes_peak == spill.bytes_written
        assert spill.batches_spilled == 1

    def test_cleanup(self, tmp_path):
        spill = SpillFileList(str(tmp_path), "test")
        p1 = spill.spill(make_tasks(2))
        p2 = spill.spill(make_tasks(2))
        spill.cleanup()
        assert not os.path.exists(p1) and not os.path.exists(p2)
        assert len(spill) == 0


class TestTruncatedSpillFiles:
    """A worker process killed mid-write leaves a short file behind; the
    refill path must skip it with a warning, not crash the engine."""

    def test_truncated_payload_skipped_next_file_loads(self, tmp_path):
        spill = SpillFileList(str(tmp_path), "test")
        spill.spill(make_tasks(2, start=0))
        bad = spill.spill(make_tasks(2, start=10))
        with open(bad, "rb") as f:
            raw = f.read()
        with open(bad, "wb") as f:
            f.write(raw[:-5])  # header intact, payload short
        with pytest.warns(RuntimeWarning, match="truncated payload"):
            loaded = spill.load_batch()
        assert [t.task_id for t in loaded] == [0, 1]
        assert spill.batches_skipped == 1
        assert not os.path.exists(bad)

    def test_skip_warning_names_path_and_frame(self, tmp_path):
        """The skip warning must identify exactly which write was lost:
        the file path and its frame number in the spill list."""
        spill = SpillFileList(str(tmp_path), "test")
        spill.spill(make_tasks(2, start=0))
        bad = spill.spill(make_tasks(2, start=10))  # second write -> frame 2
        with open(bad, "wb") as f:
            f.write(b"\x00")
        with pytest.warns(RuntimeWarning) as caught:
            spill.load_batch()
        assert len(caught) == 1
        msg = str(caught[0].message)
        assert repr(bad) in msg
        assert "frame 2" in msg
        assert "'test'" in msg  # which spill list (L_big vs a thread's L_small)

    def test_frame_index_parsing(self, tmp_path):
        spill = SpillFileList(str(tmp_path), "test")
        p1 = spill.spill(make_tasks(1))
        p2 = spill.spill(make_tasks(1))
        assert spill._frame_index(p1) == 1
        assert spill._frame_index(p2) == 2
        assert spill._frame_index("/elsewhere/not-a-spill-file") == -1

    def test_truncated_header_skipped(self, tmp_path):
        spill = SpillFileList(str(tmp_path), "test")
        bad = spill.spill(make_tasks(2))
        with open(bad, "wb") as f:
            f.write(b"\x01\x02\x03")  # shorter than the length header
        with pytest.warns(RuntimeWarning, match="truncated header"):
            assert spill.load_batch() == []
        assert spill.batches_skipped == 1

    def test_vanished_file_skipped(self, tmp_path):
        spill = SpillFileList(str(tmp_path), "test")
        bad = spill.spill(make_tasks(2))
        os.remove(bad)
        with pytest.warns(RuntimeWarning, match="unreadable"):
            assert spill.load_batch() == []
        assert spill.batches_skipped == 1

    def test_all_truncated_returns_empty(self, tmp_path):
        spill = SpillFileList(str(tmp_path), "test")
        for start in (0, 10, 20):
            bad = spill.spill(make_tasks(2, start=start))
            with open(bad, "wb") as f:
                f.write(b"")
        with pytest.warns(RuntimeWarning):
            assert spill.load_batch() == []
        assert spill.batches_skipped == 3
        assert len(spill) == 0

    def test_complete_but_corrupt_payload_raises(self, tmp_path):
        import struct

        spill = SpillFileList(str(tmp_path), "test")
        bad = spill.spill(make_tasks(2))
        garbage = b"\x80\x04definitely not a pickle stream"
        with open(bad, "wb") as f:
            f.write(struct.pack("<Q", len(garbage)))
            f.write(garbage)
        with pytest.raises(RuntimeError, match="corrupted"):
            spill.load_batch()

    def test_refill_from_spill_survives_truncation(self, tmp_path):
        spill = SpillFileList(str(tmp_path), "q")
        q = SpillableQueue(4, 2, spill)
        for t in make_tasks(7):
            q.push(t)
        assert len(spill) == 2
        bad = spill._files[-1]  # newest batch, popped first by LIFO refill
        with open(bad, "wb") as f:
            f.write(b"\x00")
        while q.pop() is not None:
            pass
        with pytest.warns(RuntimeWarning):
            assert q.refill_from_spill() == 2
        assert spill.batches_skipped == 1


class TestSpillableQueue:
    def make_queue(self, tmp_path, capacity=4, batch=2):
        spill = SpillFileList(str(tmp_path), "q")
        return SpillableQueue(capacity, batch, spill), spill

    def test_fifo(self, tmp_path):
        q, _ = self.make_queue(tmp_path)
        for t in make_tasks(3):
            q.push(t)
        assert q.pop().task_id == 0
        assert q.pop().task_id == 1

    def test_overflow_spills_tail_batch(self, tmp_path):
        q, spill = self.make_queue(tmp_path, capacity=4, batch=2)
        for t in make_tasks(5):
            q.push(t)
        # Pushing the 5th spilled the tail batch {2, 3}; queue holds 0,1,4.
        assert len(q) == 3
        assert len(spill) == 1
        assert [q.pop().task_id for _ in range(3)] == [0, 1, 4]
        assert [t.task_id for t in spill.load_batch()] == [2, 3]

    def test_refill_from_spill(self, tmp_path):
        q, spill = self.make_queue(tmp_path, capacity=4, batch=2)
        for t in make_tasks(5):
            q.push(t)
        for _ in range(3):
            q.pop()
        assert q.needs_refill()
        assert q.refill_from_spill() == 2
        assert [q.pop().task_id for _ in range(2)] == [2, 3]

    def test_try_pop_semantics(self, tmp_path):
        q, _ = self.make_queue(tmp_path)
        acquired, task = q.try_pop()
        assert acquired and task is None
        q.push(make_tasks(1)[0])
        acquired, task = q.try_pop()
        assert acquired and task.task_id == 0

    def test_try_pop_contended_lock(self, tmp_path):
        q, _ = self.make_queue(tmp_path)
        q._lock.acquire()
        try:
            acquired, task = q.try_pop()
            assert not acquired and task is None
        finally:
            q._lock.release()

    def test_pop_batch_from_back(self, tmp_path):
        q, _ = self.make_queue(tmp_path, capacity=10, batch=2)
        for t in make_tasks(5):
            q.push(t)
        batch = q.pop_batch(2)
        assert [t.task_id for t in batch] == [3, 4]
        assert len(q) == 3

    def test_pending_estimate_counts_disk(self, tmp_path):
        q, spill = self.make_queue(tmp_path, capacity=4, batch=2)
        for t in make_tasks(6):
            q.push(t)
        # one spilled batch (2 tasks estimated) + in-memory tasks
        assert q.pending_estimate() == len(q) + 2

    def test_invalid_sizes(self, tmp_path):
        spill = SpillFileList(str(tmp_path), "bad")
        with pytest.raises(ValueError):
            SpillableQueue(1, 2, spill)
        with pytest.raises(ValueError):
            SpillableQueue(4, 0, spill)
