"""Unit tests for the decomposition strategies (Algorithms 8 and 10)."""

import random


from repro.core.miner import mine_maximal_quasicliques
from repro.core.options import MiningJob, ResultSink
from repro.core.postprocess import remove_non_maximal
from repro.core.quasiclique import is_quasi_clique
from repro.gthinker.clock import AlwaysExpired, NeverExpires, OpBudget
from repro.gthinker.decompose import size_threshold_split, time_delayed_mine

from conftest import GAMMAS, make_random_graph


def make_job(graph, gamma, min_size):
    return MiningJob(graph=graph, gamma=gamma, min_size=min_size, sink=ResultSink())


def drain_subtasks(job, spawned, budget_factory):
    """Run wrapped subtasks to completion (simulating the engine loop)."""
    while spawned:
        s, ext = spawned.pop()
        sub_spawned = []
        time_delayed_mine(
            job, list(s), list(ext), budget_factory(),
            lambda s2, e2: sub_spawned.append((list(s2), list(e2))),
        )
        spawned.extend(sub_spawned)


class TestTimeDelayed:
    def test_never_expiring_budget_equals_plain_mining(self):
        for seed in range(6):
            rng = random.Random(seed)
            g = make_random_graph(10, 0.55, seed=seed + 23)
            gamma = rng.choice(GAMMAS)
            min_size = rng.randint(2, 4)
            want = mine_maximal_quasicliques(g, gamma, min_size).maximal
            job = make_job(g, gamma, min_size)
            spawned = []
            for root in sorted(g.vertices()):
                ext = sorted(u for u in g.vertices() if u > root)
                if ext:
                    time_delayed_mine(
                        job, [root], ext, NeverExpires(),
                        lambda s, e: spawned.append((list(s), list(e))),
                    )
            assert spawned == [], "no subtasks may spawn without a timeout"
            assert remove_non_maximal(job.sink.results()) == want

    def test_always_expired_spawns_and_stays_correct(self):
        for seed in range(6):
            rng = random.Random(seed + 50)
            g = make_random_graph(9, 0.6, seed=seed + 61)
            gamma = rng.choice(GAMMAS)
            min_size = rng.randint(2, 4)
            want = mine_maximal_quasicliques(g, gamma, min_size).maximal
            job = make_job(g, gamma, min_size)
            spawned = []
            for root in sorted(g.vertices()):
                ext = sorted(u for u in g.vertices() if u > root)
                if ext:
                    time_delayed_mine(
                        job, [root], ext, AlwaysExpired(),
                        lambda s, e: spawned.append((list(s), list(e))),
                    )
            drain_subtasks(job, spawned, AlwaysExpired)
            assert remove_non_maximal(job.sink.results()) == want

    def test_op_budget_bounds_in_task_mining(self):
        g = make_random_graph(12, 0.6, seed=5)
        job = make_job(g, 0.6, 3)
        budget = OpBudget(job.stats, ops=30)
        spawned = []
        root = min(g.vertices())
        ext = sorted(u for u in g.vertices() if u > root)
        time_delayed_mine(job, [root], ext, budget, lambda s, e: spawned.append((s, e)))
        # With such a small budget on a dense graph the walk must have
        # hit the timeout and wrapped remaining work as subtasks.
        assert spawned, "expected timeout-driven subtask creation"

    def test_spawned_subtasks_satisfy_invariants(self):
        g = make_random_graph(12, 0.6, seed=9)
        job = make_job(g, 0.6, 3)
        spawned = []
        root = min(g.vertices())
        ext = sorted(u for u in g.vertices() if u > root)
        time_delayed_mine(
            job, [root], ext, OpBudget(job.stats, 10),
            lambda s, e: spawned.append((list(s), list(e))),
        )
        for s, e in spawned:
            assert e, "wrapped subtasks always have work left"
            assert len(s) + len(e) >= job.min_size
            assert root in s


class TestSizeThresholdSplit:
    def test_children_cover_all_results(self):
        for seed in range(6):
            rng = random.Random(seed + 11)
            g = make_random_graph(9, 0.6, seed=seed + 43)
            gamma = rng.choice(GAMMAS)
            min_size = rng.randint(2, 4)
            want = mine_maximal_quasicliques(g, gamma, min_size).maximal
            job = make_job(g, gamma, min_size)
            pending = []
            for root in sorted(g.vertices()):
                ext = sorted(u for u in g.vertices() if u > root)
                if ext:
                    size_threshold_split(
                        job, [root], ext, lambda s, e: pending.append((list(s), list(e)))
                    )
            # Recursively split children until below threshold, then mine.
            from repro.core.recursive_mine import recursive_mine

            while pending:
                s, e = pending.pop()
                if len(e) > 2:
                    size_threshold_split(
                        job, s, e, lambda s2, e2: pending.append((list(s2), list(e2)))
                    )
                else:
                    recursive_mine(job, s, e)
            assert remove_non_maximal(job.sink.results()) == want

    def test_emissions_are_valid(self):
        g = make_random_graph(10, 0.6, seed=77)
        job = make_job(g, 0.75, 3)
        size_threshold_split(job, [0], sorted(v for v in g.vertices() if v > 0),
                             lambda s, e: None)
        for cand in job.sink.results():
            assert is_quasi_clique(g, cand, 0.75)
