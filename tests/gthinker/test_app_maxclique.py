"""Tests for the max-clique engine application (engine generality)."""

import random

import networkx as nx
import pytest

from repro.datasets.registry import build_dataset, dataset_names
from repro.gthinker.app_maxclique import (
    SharedIncumbent,
    find_max_clique_parallel,
    find_max_clique_simulated,
)
from repro.gthinker.config import EngineConfig
from repro.core.maxclique import is_clique, max_clique
from repro.graph.adjacency import Graph

from conftest import make_random_graph


def nx_max_clique_size(g: Graph) -> int:
    h = nx.Graph()
    h.add_nodes_from(g.vertices())
    h.add_edges_from(g.edges())
    return max((len(c) for c in nx.find_cliques(h)), default=0)


class TestSharedIncumbent:
    def test_monotone(self):
        inc = SharedIncumbent()
        assert inc.offer({1, 2})
        assert not inc.offer({3})
        assert inc.offer({1, 2, 3})
        assert inc.best() == {1, 2, 3}
        assert inc.size == 3

    def test_best_returns_copy(self):
        inc = SharedIncumbent()
        inc.offer({1})
        inc.best().add(99)
        assert inc.size == 1


class TestParallelMaxClique:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_oracle_serial_engine(self, seed):
        rng = random.Random(seed)
        g = make_random_graph(rng.randint(6, 16), rng.uniform(0.35, 0.75), seed=seed + 13)
        clique, _ = find_max_clique_parallel(g, EngineConfig(decompose="size", tau_split=4))
        assert is_clique(g, clique)
        assert len(clique) == nx_max_clique_size(g)

    def test_matches_oracle_threaded(self):
        g = make_random_graph(14, 0.6, seed=21)
        config = EngineConfig(
            num_machines=2, threads_per_machine=2, decompose="size", tau_split=4
        )
        clique, metrics = find_max_clique_parallel(g, config)
        assert len(clique) == nx_max_clique_size(g)
        assert metrics.tasks_spawned > 0

    def test_decomposition_creates_subtasks(self):
        g = make_random_graph(24, 0.6, seed=5)
        config = EngineConfig(decompose="size", tau_split=2)
        clique, metrics = find_max_clique_parallel(g, config)
        assert len(clique) == nx_max_clique_size(g)
        assert metrics.tasks_spawned > 0

    def test_empty_graph(self):
        clique, _ = find_max_clique_parallel(Graph())
        assert clique == set()

    def test_edgeless_graph(self):
        g = Graph.from_edges([], vertices=range(4))
        clique, _ = find_max_clique_parallel(g)
        assert len(clique) == 1

    def test_two_cliques(self, two_cliques_bridge):
        clique, _ = find_max_clique_parallel(two_cliques_bridge)
        assert len(clique) == 4
        assert is_clique(two_cliques_bridge, clique)


class TestSimulatedClusterParity:
    """The simulated cluster runs any GThinkerApp through the shared
    scheduler core — max clique mined there must equal the threaded
    engine and the serial branch-and-bound on every registry analog."""

    @pytest.mark.parametrize("name", dataset_names())
    def test_matches_engine_and_serial(self, name):
        g = build_dataset(name).graph
        serial, _ = max_clique(g)
        engine_clique, _ = find_max_clique_parallel(
            g, EngineConfig(decompose="size", tau_split=32)
        )
        sim_clique, sim_out = find_max_clique_simulated(
            g, EngineConfig(decompose="size", tau_split=32, threads_per_machine=4)
        )
        assert len(sim_clique) == len(engine_clique) == len(serial)
        assert is_clique(g, sim_clique)
        assert sim_out.makespan > 0
        assert sim_out.metrics.tasks_spawned > 0
