"""Cross-executor equivalence: one scheduling policy, five executors.

The serial fast path, the threaded driver, the process-pool executor,
the TCP cluster runtime, and the virtual-time simulator all schedule
through `repro.gthinker.scheduler.SchedulerCore`. Whatever graph and
(γ, τ_size) Hypothesis draws, all five must produce exactly the
oracle-checked maximal quasi-clique family — the property that makes
"a scheduling change can never silently apply to one executor but not
the other" testable.
"""

import itertools
import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.naive import enumerate_maximal_quasicliques
from repro.graph.adjacency import Graph
from repro.gthinker.chaos import FaultInjection
from repro.gthinker.cluster import mine_cluster
from repro.gthinker.config import EngineConfig
from repro.gthinker.engine import mine_parallel
from repro.gthinker.engine_mp import mine_multiprocess
from repro.gthinker.simulation import simulate_cluster
from repro.gthinker.tracing import Tracer


@st.composite
def small_graphs(draw, max_vertices: int = 10):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    pairs = list(itertools.combinations(range(n), 2))
    mask = draw(st.lists(st.booleans(), min_size=len(pairs), max_size=len(pairs)))
    return Graph.from_edges(
        [p for p, keep in zip(pairs, mask) if keep], vertices=range(n)
    )


def policy_config(**kwargs) -> EngineConfig:
    """A config that exercises every policy piece: big-task routing,
    decomposition, small queues (spill refill), and ready buffers."""
    base = dict(
        decompose="timed", tau_time=10, time_unit="ops", tau_split=3,
        queue_capacity=4, batch_size=2,
    )
    base.update(kwargs)
    return EngineConfig(**base)


@given(
    graph=small_graphs(),
    gamma=st.sampled_from([0.5, 2 / 3, 0.75, 0.9, 1.0]),
    min_size=st.integers(min_value=2, max_value=4),
)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_serial_threaded_process_simulated_all_match_oracle(graph, gamma, min_size):
    expected = enumerate_maximal_quasicliques(graph, gamma, min_size)
    serial = mine_parallel(graph, gamma, min_size, policy_config())
    threaded = mine_parallel(
        graph, gamma, min_size,
        policy_config(num_machines=2, threads_per_machine=2,
                      steal_period_seconds=0.005),
    )
    process = mine_parallel(
        graph, gamma, min_size,
        policy_config(backend="process", num_procs=2),
    )
    simulated = simulate_cluster(
        graph, gamma, min_size,
        policy_config(num_machines=2, threads_per_machine=2),
    )
    assert serial.maximal == expected
    assert threaded.maximal == expected
    assert process.maximal == expected
    assert simulated.maximal == expected


@given(
    graph=small_graphs(),
    gamma=st.sampled_from([0.5, 2 / 3, 0.75, 0.9, 1.0]),
    min_size=st.integers(min_value=2, max_value=4),
)
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_cluster_backend_matches_oracle(graph, gamma, min_size):
    """The TCP cluster is executor number five of the same property: a
    2-worker localhost cluster must reproduce the brute-force family
    exactly, with master-side dedup absorbing at-least-once delivery.
    Fewer examples than the in-process property — each run pays for two
    real worker processes plus a socket handshake."""
    expected = enumerate_maximal_quasicliques(graph, gamma, min_size)
    clustered = mine_cluster(
        graph, gamma, min_size,
        policy_config(
            backend="cluster", num_procs=2,
            heartbeat_period=0.02, heartbeat_timeout=5.0,
        ),
        start_method=os.environ.get("REPRO_MP_START_METHOD") or None,
        timeout=120.0,
    )
    assert clustered.maximal == expected


@given(
    graph=small_graphs(),
    gamma=st.sampled_from([0.5, 0.75, 0.9]),
    min_size=st.integers(min_value=2, max_value=4),
    kill_worker=st.integers(min_value=0, max_value=1),
    after_batches=st.integers(min_value=0, max_value=2),
)
@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_cluster_backend_chaos_equivalence(
    graph, gamma, min_size, kill_worker, after_batches
):
    """The process-backend chaos property, ported to real sockets: a
    SIGKILLed cluster worker must be invisible in the result set (the
    master reclaims its leases; re-mined candidates deduplicate)."""
    expected = enumerate_maximal_quasicliques(graph, gamma, min_size)
    tracer = Tracer()
    out = mine_cluster(
        graph, gamma, min_size,
        policy_config(
            backend="cluster", num_procs=2, cluster_chunk_size=1,
            heartbeat_period=0.02, heartbeat_timeout=5.0, max_attempts=5,
        ),
        tracer=tracer,
        start_method=os.environ.get("REPRO_MP_START_METHOD") or None,
        fault_injection=FaultInjection(
            worker_id=kill_worker, after_batches=after_batches
        ),
        timeout=120.0,
    )
    if out.maximal != expected:
        trace_dir = os.environ.get("CHAOS_TRACE_DIR")
        if trace_dir:
            os.makedirs(trace_dir, exist_ok=True)
            tracer.dump_jsonl(os.path.join(
                trace_dir,
                f"cluster-chaos-w{kill_worker}-a{after_batches}"
                f"-g{gamma}-m{min_size}.jsonl",
            ))
    assert out.maximal == expected
    assert out.metrics.tasks_quarantined == 0  # one-shot fault: no poison


@given(
    graph=small_graphs(),
    gamma=st.sampled_from([0.5, 0.75, 0.9]),
    min_size=st.integers(min_value=2, max_value=4),
    kill_worker=st.integers(min_value=0, max_value=1),
    after_batches=st.integers(min_value=0, max_value=2),
)
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_process_backend_chaos_equivalence(
    graph, gamma, min_size, kill_worker, after_batches
):
    """Chaos property: SIGKILLing worker `kill_worker` after it has
    completed `after_batches` batches must leave the process backend's
    results exactly equal to the serial miner's — the at-least-once
    retry path may re-mine tasks, but dedup and stale-lease dropping
    make the outcome indistinguishable from a fault-free run. (On jobs
    too small for the targeted worker to receive a batch, the fault
    never fires; equivalence must hold either way.)

    Seeded in CI via --hypothesis-seed; on failure the scheduler trace
    is dumped as JSONL under $CHAOS_TRACE_DIR for post-mortem.
    """
    expected = enumerate_maximal_quasicliques(graph, gamma, min_size)
    tracer = Tracer()
    out = mine_multiprocess(
        graph, gamma, min_size,
        policy_config(backend="process", num_procs=2, batch_size=1,
                      retry_backoff=0.001),
        tracer=tracer,
        start_method=os.environ.get("REPRO_MP_START_METHOD") or None,
        fault_injection=FaultInjection(
            worker_id=kill_worker, after_batches=after_batches
        ),
    )
    if out.maximal != expected:
        trace_dir = os.environ.get("CHAOS_TRACE_DIR")
        if trace_dir:
            os.makedirs(trace_dir, exist_ok=True)
            tracer.dump_jsonl(os.path.join(
                trace_dir,
                f"chaos-w{kill_worker}-a{after_batches}-g{gamma}-m{min_size}.jsonl",
            ))
    assert out.maximal == expected
    assert out.metrics.tasks_quarantined == 0  # one-shot fault: no poison
