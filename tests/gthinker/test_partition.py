"""Tests for vertex partitioning strategies."""

import pytest

from repro.core.naive import enumerate_maximal_quasicliques
from repro.gthinker.config import EngineConfig
from repro.gthinker.engine import mine_parallel
from repro.gthinker.partition import (
    balanced_degree_partitioner,
    edge_balance,
    hash_partitioner,
    make_partitioner,
    range_partitioner,
)
from repro.gthinker.simulation import simulate_cluster

from conftest import make_random_graph


class TestStrategies:
    def test_hash_matches_paper_scheme(self):
        g = make_random_graph(20, 0.3, seed=1)
        p = hash_partitioner(g, 4)
        for v in g.vertices():
            assert p.owner(v) == v % 4

    def test_range_contiguous_and_balanced(self):
        g = make_random_graph(20, 0.3, seed=2)
        p = range_partitioner(g, 4)
        parts = p.parts()
        sizes = [len(part) for part in parts]
        assert sum(sizes) == g.num_vertices
        assert max(sizes) - min(sizes) <= 1
        # Contiguity: every part is an interval of the sorted vertex list.
        flat = [v for part in parts for v in part]
        assert flat == sorted(g.vertices())

    def test_balanced_degree_beats_hash_on_skew(self):
        # Star-heavy graph: hub degrees concentrate on low IDs.
        from repro.graph.adjacency import Graph

        edges = [(0, i) for i in range(1, 40)] + [(1, i) for i in range(20, 40)]
        g = Graph.from_edges(edges)
        hash_spread = edge_balance(g, hash_partitioner(g, 4))
        lpt_spread = edge_balance(g, balanced_degree_partitioner(g, 4))
        assert max(lpt_spread) - min(lpt_spread) <= max(hash_spread) - min(hash_spread)

    def test_every_vertex_assigned_in_range(self):
        g = make_random_graph(30, 0.2, seed=3)
        for strategy in ("hash", "range", "balanced_degree"):
            p = make_partitioner(strategy, g, 5)
            for v in g.vertices():
                assert 0 <= p.owner(v) < 5

    def test_unknown_vertex_falls_back_to_hash(self):
        g = make_random_graph(10, 0.3, seed=4)
        p = range_partitioner(g, 3)
        assert p.owner(999) == 999 % 3

    def test_unknown_strategy(self):
        g = make_random_graph(5, 0.5, seed=5)
        with pytest.raises(ValueError, match="unknown partition"):
            make_partitioner("metis", g, 2)

    def test_empty_graph(self):
        from repro.graph.adjacency import Graph

        p = range_partitioner(Graph(), 3)
        assert p.parts() == [[], [], []]


class TestEnginesWithPartitioners:
    @pytest.mark.parametrize("strategy", ["hash", "range", "balanced_degree"])
    def test_engine_results_invariant(self, strategy):
        g = make_random_graph(12, 0.55, seed=6)
        config = EngineConfig(
            num_machines=3, threads_per_machine=1, partition=strategy,
            decompose="timed", tau_time=10, time_unit="ops", tau_split=3,
        )
        out = mine_parallel(g, 0.75, 3, config)
        assert out.maximal == enumerate_maximal_quasicliques(g, 0.75, 3)

    @pytest.mark.parametrize("strategy", ["hash", "range", "balanced_degree"])
    def test_simulator_results_invariant(self, strategy):
        g = make_random_graph(11, 0.5, seed=7)
        config = EngineConfig(
            num_machines=3, threads_per_machine=2, partition=strategy,
            decompose="timed", tau_time=10, time_unit="ops", tau_split=3,
        )
        out = simulate_cluster(g, 0.75, 3, config)
        assert out.maximal == enumerate_maximal_quasicliques(g, 0.75, 3)

    def test_invalid_config_strategy(self):
        with pytest.raises(ValueError):
            EngineConfig(partition="metis")
