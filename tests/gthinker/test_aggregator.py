"""Tests for job-level aggregators and the triangle-counting app."""

import threading

import networkx as nx
import pytest

from repro.graph.adjacency import Graph
from repro.graph.stats import triangle_count
from repro.gthinker.aggregator import Aggregator, MaxSetAggregator, SumAggregator
from repro.gthinker.app_triangles import TriangleCountApp, count_triangles_parallel
from repro.gthinker.config import EngineConfig

from conftest import make_random_graph


class TestAggregators:
    def test_generic_combine(self):
        agg = Aggregator(1, lambda a, b: a * b)
        agg.update(3)
        agg.update(4)
        assert agg.get() == 12

    def test_sum(self):
        agg = SumAggregator()
        agg.add()
        agg.add(5)
        assert agg.get() == 6

    def test_sum_under_contention(self):
        agg = SumAggregator()

        def worker():
            for _ in range(500):
                agg.add()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert agg.get() == 2000

    def test_max_set(self):
        agg = MaxSetAggregator()
        assert agg.offer({1})
        assert not agg.offer({2})  # equal size loses
        assert agg.offer({2, 3})
        assert agg.best() == {2, 3}
        assert agg.size == 2


class TestTriangleApp:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_serial_count(self, seed):
        g = make_random_graph(20, 0.35, seed=seed + 41)
        count, metrics = count_triangles_parallel(g)
        assert count == triangle_count(g)
        h = nx.Graph()
        h.add_nodes_from(g.vertices())
        h.add_edges_from(g.edges())
        assert count == sum(nx.triangles(h).values()) // 3

    def test_threaded(self):
        g = make_random_graph(25, 0.4, seed=3)
        config = EngineConfig(num_machines=2, threads_per_machine=2)
        count, _ = count_triangles_parallel(g, config)
        assert count == triangle_count(g)

    def test_no_triangles(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
        count, _ = count_triangles_parallel(g)
        assert count == 0

    def test_single_triangle(self, triangle_graph):
        count, _ = count_triangles_parallel(triangle_graph)
        assert count == 1

    def test_spawn_declines_thin_vertices(self, triangle_graph):
        app = TriangleCountApp()
        # Vertex 2 has no two larger neighbors.
        assert app.spawn(2, triangle_graph.neighbors(2), 0) is None
        assert app.spawn(0, triangle_graph.neighbors(0), 0) is not None


class TestAggregatorEdgeCases:
    def test_update_returns_the_new_value(self):
        agg = SumAggregator(10)
        assert agg.add(5) == 15
        assert agg.add() == 16

    def test_max_set_accepts_any_iterable_once(self):
        agg = MaxSetAggregator()
        assert agg.offer(v for v in (1, 2, 3))  # a generator is fine
        assert agg.best() == {1, 2, 3}

    def test_max_set_under_contention_keeps_a_largest_set(self):
        import threading as _threading

        agg = MaxSetAggregator()
        sizes = range(1, 40)

        def worker(offset):
            for k in sizes:
                agg.offer(range(offset, offset + k))

        threads = [
            _threading.Thread(target=worker, args=(i * 100,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert agg.size == max(sizes)
