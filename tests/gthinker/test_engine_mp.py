"""Tests for the process-pool executor (repro.gthinker.engine_mp)."""

import threading

import pytest

from repro.core.naive import enumerate_maximal_quasicliques
from repro.core.options import MiningStats, ResultSink
from repro.graph.adjacency import Graph
from repro.graph.generators import planted_quasicliques
from repro.gthinker.chaos import (
    ErrorOnRootApp,
    FaultInjection,
    KillOnRootApp,
    WedgeOnRootApp,
)
from repro.gthinker.config import EngineConfig
from repro.gthinker.engine import mine_parallel
from repro.gthinker.engine_mp import (
    MultiprocessEngine,
    _graph_from_shm,
    _graph_to_shm,
    mine_multiprocess,
)
from repro.gthinker.tracing import Tracer


@pytest.fixture(scope="module")
def planted():
    return planted_quasicliques(
        n=90, avg_degree=5, num_plants=2, plant_size=8, gamma=0.9, seed=11
    )


def small_config(**overrides) -> EngineConfig:
    base = dict(
        backend="process", num_procs=2, tau_split=4, tau_time=100,
        queue_capacity=4, batch_size=2, decompose="timed",
    )
    base.update(overrides)
    return EngineConfig(**base)


class TestConfig:
    def test_backend_validation(self):
        with pytest.raises(ValueError, match="backend"):
            EngineConfig(backend="mpi")

    def test_cluster_knob_validation(self):
        with pytest.raises(ValueError, match="heartbeat_period"):
            EngineConfig(heartbeat_period=0)
        with pytest.raises(ValueError, match="heartbeat_timeout"):
            EngineConfig(heartbeat_period=1.0, heartbeat_timeout=0.5)
        with pytest.raises(ValueError, match="cluster_chunk_size"):
            EngineConfig(cluster_chunk_size=-1)

    def test_num_procs_validation(self):
        with pytest.raises(ValueError, match="num_procs"):
            EngineConfig(num_procs=-1)

    def test_resolved_num_procs(self):
        assert EngineConfig(num_procs=3).resolved_num_procs == 3
        assert EngineConfig(num_procs=0).resolved_num_procs >= 1

    def test_fault_tolerance_knob_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            EngineConfig(max_attempts=0)
        with pytest.raises(ValueError, match="lease_slack"):
            EngineConfig(lease_slack=-1.0)
        with pytest.raises(ValueError, match="retry_backoff"):
            EngineConfig(retry_backoff=-0.1)

    def test_retry_delay_doubles_per_attempt(self):
        cfg = EngineConfig(retry_backoff=0.05)
        assert [cfg.retry_delay(a) for a in (1, 2, 3)] == [0.05, 0.1, 0.2]
        with pytest.raises(ValueError):
            cfg.retry_delay(0)

    def test_lease_timeout_scales_with_wall_budget(self):
        wall = EngineConfig(tau_time=2.0, time_unit="wall", lease_slack=1.0)
        assert wall.lease_timeout(batch_len=3) == pytest.approx(7.0)
        # With an ops budget (or no budget) wall time is unbounded by
        # tau_time, so only the slack bounds the lease.
        ops = EngineConfig(tau_time=100, time_unit="ops", lease_slack=1.0)
        assert ops.lease_timeout(batch_len=3) == pytest.approx(1.0)


class TestSharedMemoryCodec:
    def test_round_trip(self):
        g = Graph.from_edges([(0, 5), (5, 9), (0, 9), (9, 12)], vertices=[0, 5, 7, 9, 12])
        shm, nbytes = _graph_to_shm(g)
        try:
            back = _graph_from_shm(shm.name, nbytes)
        finally:
            shm.close()
            shm.unlink()
        assert back == g
        assert back.num_edges == g.num_edges

    def test_empty_graph(self):
        g = Graph()
        shm, nbytes = _graph_to_shm(g)
        try:
            back = _graph_from_shm(shm.name, nbytes)
        finally:
            shm.close()
            shm.unlink()
        assert back.num_vertices == 0 and back.num_edges == 0


class TestResultEquivalence:
    def test_matches_oracle_fork(self, planted):
        expected = mine_parallel(planted.graph, 0.9, 7, EngineConfig())
        out = mine_multiprocess(planted.graph, 0.9, 7, small_config())
        assert out.maximal == expected.maximal

    def test_matches_oracle_spawn_shared_memory(self, planted):
        """The spawn path must rebuild the graph from shared memory."""
        expected = mine_parallel(planted.graph, 0.9, 7, EngineConfig())
        out = mine_multiprocess(
            planted.graph, 0.9, 7, small_config(), start_method="spawn"
        )
        assert out.maximal == expected.maximal

    def test_small_oracle_graph(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
        expected = enumerate_maximal_quasicliques(g, 0.9, 3)
        out = mine_multiprocess(g, 0.9, 3, small_config())
        assert out.maximal == expected

    def test_mine_parallel_dispatches_on_backend(self, planted):
        expected = mine_parallel(planted.graph, 0.9, 7, EngineConfig())
        out = mine_parallel(planted.graph, 0.9, 7, small_config())
        assert out.maximal == expected.maximal

    def test_multi_machine_with_stealing(self, planted):
        expected = mine_parallel(planted.graph, 0.9, 7, EngineConfig())
        out = mine_multiprocess(
            planted.graph, 0.9, 7,
            small_config(num_machines=2, threads_per_machine=2,
                         steal_period_seconds=0.001),
        )
        assert out.maximal == expected.maximal


class TestMetricsAndTracing:
    def test_worker_metrics_merge_into_parent(self, planted):
        out = mine_multiprocess(planted.graph, 0.9, 7, small_config())
        m = out.metrics
        assert m.tasks_spawned > 0
        assert m.tasks_executed > 0
        assert m.task_records, "per-task records must cross the process boundary"
        assert m.mining_stats.mining_ops > 0
        assert m.mining_stats.nodes_expanded > 0
        assert m.wall_seconds > 0
        assert m.results == len(out.maximal)

    def test_decomposition_remainders_cross_processes(self, planted):
        out = mine_multiprocess(
            planted.graph, 0.9, 7, small_config(tau_time=20)
        )
        assert out.metrics.tasks_decomposed > 0
        assert out.metrics.subtasks_created > 0

    def test_tracer_receives_worker_events(self, planted):
        tracer = Tracer()
        mine_multiprocess(planted.graph, 0.9, 7, small_config(), tracer=tracer)
        kinds = set(tracer.counts())
        assert {"spawn", "execute", "finish"} <= kinds
        # Worker-origin events carry the worker id in the machine field
        # (the unified worker_attribution rule); pool events have no
        # worker-local thread, so thread stays -1.
        executes = tracer.events(kind="execute")
        assert all(e.machine >= 0 for e in executes)
        assert all(e.thread == -1 for e in executes)


class _UnpicklableApp:
    """Valid protocol surface, but carries a lock no pickle can ship."""

    def __init__(self):
        self.sink = ResultSink()
        self.stats = MiningStats()
        self.lock = threading.Lock()

    def spawn(self, vertex, adjacency, task_id):
        return None

    def compute(self, task, frontier, ctx):
        raise AssertionError("never runs")


class TestFailureModes:
    def test_unpicklable_app_raises_at_construction(self, planted):
        """The clear error belongs in the parent, not inside a worker."""
        with pytest.raises(TypeError, match="not picklable"):
            MultiprocessEngine(
                planted.graph, _UnpicklableApp(), small_config()
            )

    def test_unknown_start_method_rejected(self, planted):
        from repro.core.options import DEFAULT_OPTIONS
        from repro.gthinker.app_quasiclique import QuasiCliqueApp

        app = QuasiCliqueApp(0.9, 7, sink=ResultSink(), options=DEFAULT_OPTIONS)
        with pytest.raises(ValueError, match="start method"):
            MultiprocessEngine(
                planted.graph, app, small_config(), start_method="teleport"
            )

    def test_gthinker_engine_rejects_process_backend(self, planted):
        from repro.core.options import DEFAULT_OPTIONS
        from repro.gthinker.app_quasiclique import QuasiCliqueApp
        from repro.gthinker.engine import GThinkerEngine

        app = QuasiCliqueApp(0.9, 7, sink=ResultSink(), options=DEFAULT_OPTIONS)
        engine = GThinkerEngine(planted.graph, app, small_config())
        with pytest.raises(ValueError, match="MultiprocessEngine"):
            engine.run()


def one_vertex_graph() -> Graph:
    """Exactly one task ever exists, so fault accounting is exact —
    no innocent neighbor can be quarantined as batch collateral."""
    return Graph.from_edges([], vertices=[0])


class TestFaultTolerance:
    """Worker supervision, task-lease retry, and quarantine."""

    def test_injected_worker_death_recovers_and_matches_oracle(self, planted):
        """A SIGKILLed worker must cost nothing but a respawn: the job
        finishes and the results equal the fault-free run's."""
        expected = mine_parallel(planted.graph, 0.9, 7, EngineConfig())
        tracer = Tracer()
        out = mine_multiprocess(
            planted.graph, 0.9, 7,
            small_config(retry_backoff=0.001),
            tracer=tracer,
            fault_injection=FaultInjection(worker_id=0, after_batches=1),
        )
        assert out.maximal == expected.maximal
        assert out.metrics.workers_died == 1
        assert out.metrics.tasks_retried >= 1
        assert out.metrics.tasks_quarantined == 0
        assert len(tracer.events(kind="worker_died")) == 1
        assert len(tracer.events(kind="task_retried")) == out.metrics.tasks_retried

    def test_injected_death_under_spawn_start_method(self, planted):
        """Same recovery with spawn workers (shared-memory graph path)."""
        expected = mine_parallel(planted.graph, 0.9, 7, EngineConfig())
        out = mine_multiprocess(
            planted.graph, 0.9, 7,
            small_config(retry_backoff=0.001),
            start_method="spawn",
            fault_injection=FaultInjection(worker_id=1, after_batches=0),
        )
        assert out.maximal == expected.maximal
        assert out.metrics.workers_died == 1

    def test_poison_task_quarantined_exactly_once(self):
        """A task that kills its worker on every attempt is dispatched
        exactly max_attempts times, retried with doubling backoff, then
        quarantined exactly once — and the run still returns."""
        cfg = small_config(
            num_procs=1, batch_size=1, max_attempts=3, retry_backoff=0.01
        )
        tracer = Tracer()
        engine = MultiprocessEngine(
            one_vertex_graph(), KillOnRootApp(poison_root=0), cfg, tracer=tracer
        )
        out = engine.run()
        assert out.metrics.workers_died == 3  # one death per attempt
        assert out.metrics.tasks_retried == 2
        assert out.metrics.tasks_quarantined == 1
        assert out.candidates == set()
        # The quarantined task surfaces exactly once, with its root.
        assert [(t.task_id, t.root) for t in engine.quarantined] == [(0, 0)]
        assert engine.leases.quarantined_ids == [0]
        # Attempt counts and the exponential backoff sequence.
        assert engine.retry_schedule == [(0, 1, 0.01), (0, 2, 0.02)]
        quarantine_events = tracer.events(kind="task_quarantined")
        assert len(quarantine_events) == 1
        assert quarantine_events[0].detail == "attempts=3 size=1"
        assert len(tracer.events(kind="worker_died")) == 3

    def test_wedged_worker_reclaimed_on_lease_expiry(self):
        """A worker that blocks forever is declared wedged once its
        lease deadline passes; the parent terminates and replaces it."""
        cfg = small_config(
            num_procs=1, batch_size=1, max_attempts=2,
            lease_slack=0.3, retry_backoff=0.01,
        )
        engine = MultiprocessEngine(
            one_vertex_graph(),
            WedgeOnRootApp(poison_root=0, wedge_seconds=60.0),
            cfg,
        )
        out = engine.run()  # must return despite the 60s sleeps
        assert out.metrics.workers_died == 2
        assert out.metrics.tasks_quarantined == 1
        assert out.candidates == set()

    def test_app_error_recorded_and_survived(self):
        """compute() raising inside a worker is a worker failure, not a
        run failure: traceback recorded, warning emitted, task retried
        to quarantine, healthy work unaffected."""
        cfg = small_config(
            num_procs=1, batch_size=1, max_attempts=2, retry_backoff=0.01
        )
        engine = MultiprocessEngine(
            one_vertex_graph(), ErrorOnRootApp(poison_root=0), cfg
        )
        with pytest.warns(RuntimeWarning, match="worker process 0 failed"):
            out = engine.run()
        assert out.metrics.tasks_quarantined == 1
        assert len(engine.worker_errors) == 2  # one traceback per attempt
        assert all("injected fault" in tb for tb in engine.worker_errors)

    def test_healthy_roots_survive_a_poison_neighbor(self):
        """Multi-task graph with one poison root: every root that is
        never co-leased behind the poison one still yields its result,
        and the poison task is quarantined exactly once."""
        g = Graph.from_edges([(i, i + 1) for i in range(5)], vertices=range(6))
        cfg = small_config(
            num_procs=2, batch_size=1, max_attempts=2, retry_backoff=0.01
        )
        engine = MultiprocessEngine(g, KillOnRootApp(poison_root=0), cfg)
        out = engine.run()
        assert engine.leases.quarantined_ids.count(0) == 1
        assert frozenset([0]) not in out.candidates
        # Batch-granular leases may quarantine a co-leased neighbor as
        # collateral; everything else must have been mined.
        collateral = {t.root for t in engine.quarantined}
        assert out.candidates == {
            frozenset([v]) for v in range(1, 6) if v not in collateral
        }

    def test_no_injection_means_no_fault_metrics(self, planted):
        out = mine_multiprocess(planted.graph, 0.9, 7, small_config())
        assert out.metrics.workers_died == 0
        assert out.metrics.tasks_retried == 0
        assert out.metrics.tasks_quarantined == 0
