"""Tests for the process-pool executor (repro.gthinker.engine_mp)."""

import threading

import pytest

from repro.core.naive import enumerate_maximal_quasicliques
from repro.core.options import MiningStats, ResultSink
from repro.graph.adjacency import Graph
from repro.graph.generators import planted_quasicliques
from repro.gthinker.config import EngineConfig
from repro.gthinker.engine import mine_parallel
from repro.gthinker.engine_mp import (
    MultiprocessEngine,
    _graph_from_shm,
    _graph_to_shm,
    mine_multiprocess,
)
from repro.gthinker.tracing import Tracer


@pytest.fixture(scope="module")
def planted():
    return planted_quasicliques(
        n=90, avg_degree=5, num_plants=2, plant_size=8, gamma=0.9, seed=11
    )


def small_config(**overrides) -> EngineConfig:
    base = dict(
        backend="process", num_procs=2, tau_split=4, tau_time=100,
        queue_capacity=4, batch_size=2, decompose="timed",
    )
    base.update(overrides)
    return EngineConfig(**base)


class TestConfig:
    def test_backend_validation(self):
        with pytest.raises(ValueError, match="backend"):
            EngineConfig(backend="cluster")

    def test_num_procs_validation(self):
        with pytest.raises(ValueError, match="num_procs"):
            EngineConfig(num_procs=-1)

    def test_resolved_num_procs(self):
        assert EngineConfig(num_procs=3).resolved_num_procs == 3
        assert EngineConfig(num_procs=0).resolved_num_procs >= 1


class TestSharedMemoryCodec:
    def test_round_trip(self):
        g = Graph.from_edges([(0, 5), (5, 9), (0, 9), (9, 12)], vertices=[0, 5, 7, 9, 12])
        shm, nbytes = _graph_to_shm(g)
        try:
            back = _graph_from_shm(shm.name, nbytes)
        finally:
            shm.close()
            shm.unlink()
        assert back == g
        assert back.num_edges == g.num_edges

    def test_empty_graph(self):
        g = Graph()
        shm, nbytes = _graph_to_shm(g)
        try:
            back = _graph_from_shm(shm.name, nbytes)
        finally:
            shm.close()
            shm.unlink()
        assert back.num_vertices == 0 and back.num_edges == 0


class TestResultEquivalence:
    def test_matches_oracle_fork(self, planted):
        expected = mine_parallel(planted.graph, 0.9, 7, EngineConfig())
        out = mine_multiprocess(planted.graph, 0.9, 7, small_config())
        assert out.maximal == expected.maximal

    def test_matches_oracle_spawn_shared_memory(self, planted):
        """The spawn path must rebuild the graph from shared memory."""
        expected = mine_parallel(planted.graph, 0.9, 7, EngineConfig())
        out = mine_multiprocess(
            planted.graph, 0.9, 7, small_config(), start_method="spawn"
        )
        assert out.maximal == expected.maximal

    def test_small_oracle_graph(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
        expected = enumerate_maximal_quasicliques(g, 0.9, 3)
        out = mine_multiprocess(g, 0.9, 3, small_config())
        assert out.maximal == expected

    def test_mine_parallel_dispatches_on_backend(self, planted):
        expected = mine_parallel(planted.graph, 0.9, 7, EngineConfig())
        out = mine_parallel(planted.graph, 0.9, 7, small_config())
        assert out.maximal == expected.maximal

    def test_multi_machine_with_stealing(self, planted):
        expected = mine_parallel(planted.graph, 0.9, 7, EngineConfig())
        out = mine_multiprocess(
            planted.graph, 0.9, 7,
            small_config(num_machines=2, threads_per_machine=2,
                         steal_period_seconds=0.001),
        )
        assert out.maximal == expected.maximal


class TestMetricsAndTracing:
    def test_worker_metrics_merge_into_parent(self, planted):
        out = mine_multiprocess(planted.graph, 0.9, 7, small_config())
        m = out.metrics
        assert m.tasks_spawned > 0
        assert m.tasks_executed > 0
        assert m.task_records, "per-task records must cross the process boundary"
        assert m.mining_stats.mining_ops > 0
        assert m.mining_stats.nodes_expanded > 0
        assert m.wall_seconds > 0
        assert m.results == len(out.maximal)

    def test_decomposition_remainders_cross_processes(self, planted):
        out = mine_multiprocess(
            planted.graph, 0.9, 7, small_config(tau_time=20)
        )
        assert out.metrics.tasks_decomposed > 0
        assert out.metrics.subtasks_created > 0

    def test_tracer_receives_worker_events(self, planted):
        tracer = Tracer()
        mine_multiprocess(planted.graph, 0.9, 7, small_config(), tracer=tracer)
        kinds = set(tracer.counts())
        assert {"spawn", "execute", "finish"} <= kinds
        # Worker-side events carry the worker slot in the thread field.
        assert all(e.machine == -1 for e in tracer.events(kind="execute"))


class _UnpicklableApp:
    """Valid protocol surface, but carries a lock no pickle can ship."""

    def __init__(self):
        self.sink = ResultSink()
        self.stats = MiningStats()
        self.lock = threading.Lock()

    def spawn(self, vertex, adjacency, task_id):
        return None

    def compute(self, task, frontier, ctx):
        raise AssertionError("never runs")


class TestFailureModes:
    def test_unpicklable_app_raises_at_construction(self, planted):
        """The clear error belongs in the parent, not inside a worker."""
        with pytest.raises(TypeError, match="not picklable"):
            MultiprocessEngine(
                planted.graph, _UnpicklableApp(), small_config()
            )

    def test_unknown_start_method_rejected(self, planted):
        from repro.core.options import DEFAULT_OPTIONS
        from repro.gthinker.app_quasiclique import QuasiCliqueApp

        app = QuasiCliqueApp(0.9, 7, sink=ResultSink(), options=DEFAULT_OPTIONS)
        with pytest.raises(ValueError, match="start method"):
            MultiprocessEngine(
                planted.graph, app, small_config(), start_method="teleport"
            )

    def test_gthinker_engine_rejects_process_backend(self, planted):
        from repro.core.options import DEFAULT_OPTIONS
        from repro.gthinker.app_quasiclique import QuasiCliqueApp
        from repro.gthinker.engine import GThinkerEngine

        app = QuasiCliqueApp(0.9, 7, sink=ResultSink(), options=DEFAULT_OPTIONS)
        engine = GThinkerEngine(planted.graph, app, small_config())
        with pytest.raises(ValueError, match="MultiprocessEngine"):
            engine.run()
