"""Tests for the Task abstraction and its serialization."""

import pytest

from repro.graph.adjacency import Graph
from repro.gthinker.task import ComputeOutcome, Task


class TestSerialization:
    def test_round_trip_pre_mining_task(self):
        t = Task(
            task_id=7,
            root=3,
            iteration=1,
            s=[3],
            building={3: {4, 5}},
            one_hop={3, 4, 5},
            pulls=[4, 5],
        )
        back = Task.decode(t.encode())
        assert back.task_id == 7
        assert back.root == 3
        assert back.building == {3: {4, 5}}
        assert back.pulls == [4, 5]

    def test_round_trip_mining_task_with_graph(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2)])
        t = Task(task_id=1, root=0, iteration=3, s=[0], ext=[1, 2], graph=g)
        back = Task.decode(t.encode())
        assert back.graph == g
        assert back.ext == [1, 2]
        assert back.iteration == 3

    def test_round_trip_mining_task_with_domain(self):
        from repro.core.domain import TaskDomain

        g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        d = TaskDomain.from_graph(g)
        t = Task(task_id=2, root=0, iteration=3, s=[0], ext=[1, 2, 3], domain=d)
        back = Task.decode(t.encode())
        assert back.domain == d
        assert back.graph is None

    def test_domain_task_encodes_smaller_than_graph_task(self):
        from repro.core.domain import TaskDomain

        g = Graph.from_edges(
            [(u, v) for u in range(30) for v in range(u + 1, 30) if (u + v) % 3]
        )
        ext = sorted(set(g.vertices()) - {0})
        with_graph = Task(task_id=1, root=0, iteration=3, s=[0], ext=ext, graph=g)
        with_domain = Task(
            task_id=1, root=0, iteration=3, s=[0], ext=ext,
            domain=TaskDomain.from_graph(g),
        )
        assert len(with_domain.encode()) < len(with_graph.encode())

    def test_decode_rejects_non_task(self):
        import pickle

        with pytest.raises(TypeError):
            Task.decode(pickle.dumps({"not": "a task"}))


class TestIsBig:
    def test_iteration3_uses_ext(self):
        t = Task(task_id=0, root=0, iteration=3, s=[0], ext=list(range(10)))
        assert t.is_big(tau_split=9)
        assert not t.is_big(tau_split=10)

    def test_pre_mining_uses_pull_scope(self):
        t = Task(task_id=0, root=0, iteration=1, pulls=list(range(20)),
                 building={0: set(range(20))})
        assert t.is_big(tau_split=19)
        assert not t.is_big(tau_split=20)

    def test_pre_mining_uses_building_scope(self):
        t = Task(
            task_id=0, root=0, iteration=2, pulls=[],
            building={i: set() for i in range(15)},
        )
        assert t.is_big(tau_split=10)
        assert not t.is_big(tau_split=15)


class TestComputeOutcome:
    def test_continues_property(self):
        assert ComputeOutcome(finished=False).continues
        assert not ComputeOutcome(finished=True).continues
