"""Tests for the quasi-clique application UDFs (Algorithms 4–7)."""

import pytest

from repro.core.options import ResultSink
from repro.core.quasiclique import kcore_threshold
from repro.gthinker.app_quasiclique import ComputeContext, QuasiCliqueApp
from repro.gthinker.config import EngineConfig
from repro.graph.adjacency import Graph
from repro.graph.kcore import k_core
from repro.graph.traversal import bfs_distances

from conftest import make_random_graph


def run_to_iteration3(app, graph, root):
    """Drive one task through iterations 1–2 with direct frontier service."""
    task = app.spawn(root, graph.neighbors(root), task_id=0)
    if task is None:
        return None
    ctx = ComputeContext(config=EngineConfig(), next_task_id=lambda: 99)
    while task.iteration < 3:
        frontier = {v: (graph.neighbors(v) if graph.has_vertex(v) else []) for v in task.pulls}
        task.pulls = []
        outcome = app.compute(task, frontier, ctx)
        if outcome.finished:
            return None
    return task


def task_subgraph(task):
    """The mining subgraph as a Graph, whichever representation it rides in."""
    if task.domain is not None:
        return task.domain.to_graph()
    return task.graph


class TestSpawn:
    def test_low_degree_declined(self):
        g = Graph.from_edges([(0, 1), (1, 2), (1, 3), (2, 3)])
        app = QuasiCliqueApp(gamma=0.9, min_size=3, sink=ResultSink())
        assert app.k == kcore_threshold(0.9, 3)
        assert app.spawn(0, g.neighbors(0), 0) is None  # degree 1 < k=2

    def test_spawn_pulls_only_larger_ids(self):
        g = Graph.from_edges([(2, 0), (2, 1), (2, 3), (2, 4)])
        app = QuasiCliqueApp(gamma=0.5, min_size=3, sink=ResultSink())
        task = app.spawn(2, g.neighbors(2), 0)
        assert task is not None
        assert task.pulls == [3, 4]

    def test_min_size_one_emits_singleton(self):
        g = Graph.from_edges([(0, 1)])
        sink = ResultSink()
        app = QuasiCliqueApp(gamma=0.9, min_size=1, sink=sink)
        app.spawn(0, g.neighbors(0), 0)
        assert frozenset({0}) in sink.results()


class TestSubgraphConstruction:
    @pytest.mark.parametrize("seed", range(6))
    def test_task_graph_is_kcore_of_restricted_ego(self, seed):
        g = make_random_graph(25, 0.3, seed=seed + 7)
        gamma, min_size = 0.8, 4
        app = QuasiCliqueApp(gamma=gamma, min_size=min_size, sink=ResultSink())
        k = app.k
        for root in list(g.vertices())[:8]:
            if g.degree(root) < k:
                continue
            task = run_to_iteration3(app, g, root)
            if task is None:
                continue
            tg = task_subgraph(task)
            assert root in tg
            # Every vertex: ID ≥ root, degree ≥ k inside the task graph,
            # within 2 hops of root in G.
            dist = bfs_distances(g, root, max_depth=2)
            for v in tg.vertices():
                assert v >= root
                assert tg.degree(v) >= k
                assert v in dist
            # The task graph is its own k-core (stable under peeling).
            assert k_core(tg, k) == tg
            # ext(S) is everything except the root, sorted.
            assert task.s == [root]
            assert task.ext == sorted(set(tg.vertices()) - {root})

    def test_task_graph_edges_exist_in_g(self):
        g = make_random_graph(20, 0.35, seed=3)
        app = QuasiCliqueApp(gamma=0.8, min_size=3, sink=ResultSink())
        for root in list(g.vertices())[:6]:
            if g.degree(root) < app.k:
                continue
            task = run_to_iteration3(app, g, root)
            if task is None:
                continue
            for u, v in task_subgraph(task).edges():
                assert g.has_edge(u, v)

    def test_root_peeled_terminates_task(self):
        # Star center with ID 0: neighbors have degree 1 < k → all pruned,
        # the root loses its support and the task dies in iteration 1.
        g = Graph.from_edges([(0, i) for i in range(1, 6)])
        app = QuasiCliqueApp(gamma=0.9, min_size=3, sink=ResultSink())
        task = app.spawn(0, g.neighbors(0), 0)
        assert task is not None
        ctx = ComputeContext(config=EngineConfig(), next_task_id=lambda: 1)
        frontier = {v: g.neighbors(v) for v in task.pulls}
        task.pulls = []
        outcome = app.compute(task, frontier, ctx)
        assert outcome.finished
