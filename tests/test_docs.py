"""Documentation is part of the contract — keep it executable and in sync.

Two enforcement layers:

1. every fenced ``python`` block in the user-facing docs is executed,
   per document, in a **subprocess** (importing engine apps registers
   them globally, and doc snippets define throwaway apps that must not
   leak into this process's registry — see the registry parity tests);
   blocks in one document share a namespace, in order, so a later
   snippet may use names a previous one defined — exactly how a reader
   would follow the page;
2. the trace-kind and span tables in ``docs/OBSERVABILITY.md`` are
   checked **bidirectionally** against ``tracing.KINDS`` and
   ``obs.spans.SPAN_NAMES``: a kind added to either the code or the doc
   without the other fails here.
"""

import os
import re
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DOC_FILES = [
    "README.md",
    "DESIGN.md",
    "docs/ALGORITHMS.md",
    "docs/API.md",
    "docs/BACKENDS.md",
    "docs/OBSERVABILITY.md",
    "docs/SERVICE.md",
    "docs/TESTING.md",
]

_FENCE = re.compile(r"```python\n(.*?)```", re.S)


def _read_doc(rel_path):
    with open(os.path.join(REPO_ROOT, rel_path), encoding="utf-8") as f:
        return f.read()


def _python_blocks(rel_path):
    return [m.group(1) for m in _FENCE.finditer(_read_doc(rel_path))]


def test_every_doc_exists():
    for rel_path in DOC_FILES:
        assert os.path.isfile(os.path.join(REPO_ROOT, rel_path)), rel_path


@pytest.mark.parametrize(
    "rel_path",
    [p for p in DOC_FILES if _python_blocks(p)],
)
def test_doc_python_blocks_execute(rel_path, tmp_path):
    """Concatenate the doc's ``python`` fences and run them as one
    script against ``src`` — stale imports, renamed arguments, or
    changed behaviour in any snippet fail loudly."""
    blocks = _python_blocks(rel_path)
    script = "\n\n".join(
        f"# --- {rel_path} block {i} ---\n{block}"
        for i, block in enumerate(blocks)
    )
    script_path = tmp_path / (rel_path.replace("/", "_") + ".py")
    script_path.write_text(script, encoding="utf-8")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    # Doc snippets must run as a plain user would run them, outside
    # pytest's strict-trace mode.
    env.pop("PYTEST_CURRENT_TEST", None)
    proc = subprocess.run(
        [sys.executable, str(script_path)],
        cwd=str(tmp_path),
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{rel_path} snippets failed "
        f"(exit {proc.returncode})\n--- stdout ---\n{proc.stdout}"
        f"\n--- stderr ---\n{proc.stderr}"
    )


def _table_kinds(section_heading):
    """First-column backticked identifiers of the markdown table that
    follows ``section_heading`` in docs/OBSERVABILITY.md."""
    text = _read_doc("docs/OBSERVABILITY.md")
    start = text.index(section_heading)
    end = text.find("\n## ", start)
    section = text[start : end if end != -1 else len(text)]
    return re.findall(r"^\| `([a-z_]+)` \|", section, re.M)


def test_observability_kind_table_matches_tracing_kinds():
    from repro.gthinker.tracing import KINDS

    documented = _table_kinds("### Trace kinds")
    assert sorted(documented) == sorted(set(documented)), "duplicate rows"
    missing = set(KINDS) - set(documented)
    extra = set(documented) - set(KINDS)
    assert not missing, f"kinds missing from docs/OBSERVABILITY.md: {missing}"
    assert not extra, f"kinds documented but not in tracing.KINDS: {extra}"


def test_observability_span_table_matches_span_names():
    from repro.gthinker.obs.spans import SPAN_NAMES

    documented = _table_kinds("## Spans")
    assert sorted(documented) == sorted(set(documented)), "duplicate rows"
    assert set(documented) == set(SPAN_NAMES)


def test_observability_metrics_table_matches_engine_metrics():
    import dataclasses

    from repro.gthinker.metrics import EngineMetrics

    text = _read_doc("docs/OBSERVABILITY.md")
    start = text.index("## `EngineMetrics`")
    end = text.find("\n## ", start + 1)
    section = text[start : end if end != -1 else len(text)]
    documented = set()
    for row in re.findall(r"^\| (`[^|]+`(?: / `[^|]+`)*) \|", section, re.M):
        documented.update(re.findall(r"`([a-z_]+)`", row))
    fields = {f.name for f in dataclasses.fields(EngineMetrics)}
    missing = fields - documented
    assert not missing, f"EngineMetrics fields missing from docs: {missing}"
    extra = documented - fields
    assert not extra, f"documented fields not on EngineMetrics: {extra}"
