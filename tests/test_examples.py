"""Smoke tests: every example script must run to completion.

Examples are documentation that executes; a broken example is a broken
README. Each is run in-process via runpy with stdout captured.
"""

import runpy

import pytest

EXAMPLES = [
    "examples/quickstart.py",
    "examples/gene_coexpression.py",
    "examples/custom_engine_app.py",
    "examples/temporal_communities.py",
    "examples/query_vertex.py",
    "examples/community_detection.py",
    "examples/scalability_study.py",
    "examples/top_communities.py",
]

FAST = 5

FAST_EXAMPLES = EXAMPLES[:FAST]


@pytest.mark.parametrize("path", FAST_EXAMPLES)
def test_example_runs(path, capsys):
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path} produced no output"


def test_quickstart_recovers_plants(capsys):
    runpy.run_path("examples/quickstart.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "found 3 maximal" in out
    assert "(planted)" in out


def test_gene_coexpression_recovers_modules(capsys):
    runpy.run_path("examples/gene_coexpression.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "Jaccard 1.00" in out


@pytest.mark.slow
@pytest.mark.parametrize("path", EXAMPLES[FAST:])
def test_slow_example_runs(path, capsys):
    runpy.run_path(path, run_name="__main__")
    assert capsys.readouterr().out.strip()
