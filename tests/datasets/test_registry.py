"""Tests for the dataset registry (Table 1 analogs)."""

import pytest

from repro.core.quasiclique import is_quasi_clique
from repro.datasets import DatasetSpec, build_dataset, dataset_names, get_dataset


class TestRegistry:
    def test_all_eight_paper_datasets_present(self):
        names = dataset_names()
        assert names == [
            "cx_gse1730", "cx_gse10158", "ca_grqc", "enron",
            "dblp", "amazon", "hyves", "youtube",
        ]

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            get_dataset("friendster")

    def test_paper_facts_match_table1(self):
        # Spot checks against the paper's Table 1 / Table 2 rows.
        yt = get_dataset("youtube")
        assert yt.paper_vertices == 1_134_890
        assert yt.paper_edges == 2_987_624
        assert yt.paper_gamma == 0.9 and yt.paper_min_size == 18
        assert yt.paper_result_count == 1_320
        enron = get_dataset("enron")
        assert enron.paper_vertices == 36_692
        assert enron.paper_tau_time == 0.01

    def test_build_is_memoized(self):
        a = build_dataset("cx_gse1730")
        b = build_dataset("cx_gse1730")
        assert a is b

    def test_build_deterministic(self):
        spec = get_dataset("ca_grqc")
        assert spec.build().graph == spec.build().graph

    @pytest.mark.parametrize("name", ["cx_gse1730", "ca_grqc", "hyves"])
    def test_plants_are_mineable_quasicliques(self, name):
        spec = get_dataset(name)
        pg = build_dataset(name)
        assert pg.graph.num_vertices == spec.analog_vertices
        for plant in pg.planted:
            assert is_quasi_clique(pg.graph, plant, spec.gamma)
            assert len(plant) >= spec.min_size

    def test_gamma_regime(self):
        for name in dataset_names():
            spec = get_dataset(name)
            assert 0.5 <= spec.gamma <= 1.0
            assert spec.min_size >= 2

    def test_bad_kind_rejected(self):
        spec = get_dataset("enron")
        broken = DatasetSpec(**{**spec.__dict__, "kind": "mystery"})
        with pytest.raises(ValueError):
            broken.build()
