"""Tests for the dataset disk cache."""


from repro.datasets import build_dataset
from repro.datasets.cache import (
    get_or_build,
    is_cached,
    load_dataset,
    save_dataset,
)


class TestCacheRoundTrip:
    def test_save_load(self, tmp_path):
        pg = build_dataset("cx_gse1730")
        save_dataset(str(tmp_path), "cx_gse1730", pg)
        loaded = load_dataset(str(tmp_path), "cx_gse1730")
        # Edge lists drop isolated vertices; compare edges + planted.
        assert sorted(loaded.graph.edges()) == sorted(
            (u, v) for u, v in pg.graph.edges()
        )
        assert loaded.planted == pg.planted

    def test_is_cached_lifecycle(self, tmp_path):
        assert not is_cached(str(tmp_path), "ca_grqc")
        get_or_build(str(tmp_path), "ca_grqc")
        assert is_cached(str(tmp_path), "ca_grqc")

    def test_get_or_build_idempotent(self, tmp_path):
        a = get_or_build(str(tmp_path), "ca_grqc")
        b = get_or_build(str(tmp_path), "ca_grqc")
        assert sorted(a.graph.edges()) == sorted(b.graph.edges())
        assert a.planted == b.planted

    def test_fingerprint_invalidation(self, tmp_path):
        get_or_build(str(tmp_path), "ca_grqc")
        meta = tmp_path / "ca_grqc" / "meta.txt"
        meta.write_text("stale fingerprint\n")
        assert not is_cached(str(tmp_path), "ca_grqc")
        # Rebuild heals the cache.
        get_or_build(str(tmp_path), "ca_grqc")
        assert is_cached(str(tmp_path), "ca_grqc")

    def test_cached_graph_mines_identically(self, tmp_path):
        from repro.core.miner import mine_maximal_quasicliques
        from repro.datasets import get_dataset

        spec = get_dataset("cx_gse1730")
        original = build_dataset("cx_gse1730")
        cached = get_or_build(str(tmp_path), "cx_gse1730")
        a = mine_maximal_quasicliques(original.graph, spec.gamma, spec.min_size)
        b = mine_maximal_quasicliques(cached.graph, spec.gamma, spec.min_size)
        assert a.maximal == b.maximal
