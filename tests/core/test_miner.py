"""End-to-end serial miner tests against the brute-force oracle."""

import random

import pytest

from repro.core.miner import mine_maximal_quasicliques
from repro.core.naive import enumerate_maximal_quasicliques
from repro.core.options import MinerOptions
from repro.core.quasiclique import is_quasi_clique
from repro.graph.adjacency import Graph
from repro.graph.generators import planted_quasicliques

from conftest import GAMMAS, make_random_graph


class TestOracleEquivalence:
    @pytest.mark.parametrize("mode", ["ego", "global"])
    @pytest.mark.parametrize("seed", range(10))
    def test_random_graphs(self, mode, seed):
        rng = random.Random(seed)
        g = make_random_graph(rng.randint(4, 12), rng.uniform(0.25, 0.8), seed=seed + 31)
        gamma = rng.choice(GAMMAS)
        min_size = rng.randint(1, 5)
        got = mine_maximal_quasicliques(g, gamma, min_size, mode=mode).maximal
        want = enumerate_maximal_quasicliques(g, gamma, min_size)
        assert got == want

    def test_figure4_runs(self, figure4_graph):
        result = mine_maximal_quasicliques(figure4_graph, 0.6, 4)
        assert result.maximal == enumerate_maximal_quasicliques(figure4_graph, 0.6, 4)
        s2 = frozenset({0, 1, 2, 3, 4})
        assert s2 in result.maximal

    def test_empty_graph(self):
        result = mine_maximal_quasicliques(Graph(), 0.9, 3)
        assert result.maximal == set()

    def test_no_results_when_thresholds_strict(self, path_graph):
        assert mine_maximal_quasicliques(path_graph, 1.0, 3).maximal == set()

    def test_min_size_one_returns_isolated_maximals(self):
        g = Graph.from_edges([(0, 1)], vertices=range(3))
        result = mine_maximal_quasicliques(g, 1.0, 1)
        assert result.maximal == {frozenset({0, 1}), frozenset({2})}


class TestPlantedRecovery:
    def test_plants_recovered(self):
        pg = planted_quasicliques(
            n=150, avg_degree=4, num_plants=3, plant_size=8, gamma=0.9, seed=7
        )
        result = mine_maximal_quasicliques(pg.graph, 0.9, 7)
        for plant in pg.planted:
            # The plant (or a superset of it) must be in the output.
            assert any(plant <= found for found in result.maximal), (
                f"planted quasi-clique {sorted(plant)} lost"
            )

    def test_all_results_valid_and_size_filtered(self):
        pg = planted_quasicliques(
            n=120, avg_degree=4, num_plants=2, plant_size=8, gamma=0.85, seed=2
        )
        result = mine_maximal_quasicliques(pg.graph, 0.85, 6)
        for qc in result.maximal:
            assert len(qc) >= 6
            assert is_quasi_clique(pg.graph, qc, 0.85)


class TestStatsAndInputs:
    def test_stats_populated(self, figure4_graph):
        result = mine_maximal_quasicliques(figure4_graph, 0.6, 3)
        assert result.stats.mining_ops > 0
        assert result.stats.candidates_emitted >= len(result.maximal)

    def test_invalid_mode(self, triangle_graph):
        with pytest.raises(ValueError):
            mine_maximal_quasicliques(triangle_graph, 0.6, 2, mode="nope")

    def test_gamma_below_half_rejected(self, triangle_graph):
        with pytest.raises(ValueError, match="0.5"):
            mine_maximal_quasicliques(triangle_graph, 0.4, 2)

    def test_maximal_subset_of_candidates(self, figure4_graph):
        result = mine_maximal_quasicliques(figure4_graph, 0.6, 3)
        assert result.maximal <= result.candidates


class TestAblationConsistency:
    """Disabling any individual pruning family must not change results."""

    @pytest.mark.parametrize(
        "disabled",
        [
            "use_diameter_prune",
            "use_degree_prune",
            "use_upper_bound",
            "use_lower_bound",
            "use_critical_vertex",
            "use_cover_vertex",
            "use_lookahead",
            "kcore_preprocess",
        ],
    )
    def test_toggle_preserves_results(self, disabled):
        opts = MinerOptions(**{disabled: False})
        for seed in range(5):
            rng = random.Random(seed)
            g = make_random_graph(10, 0.55, seed=seed + 101)
            gamma = rng.choice(GAMMAS)
            min_size = rng.randint(2, 4)
            base = mine_maximal_quasicliques(g, gamma, min_size).maximal
            toggled = mine_maximal_quasicliques(
                g, gamma, min_size, options=opts, mode="global"
            ).maximal
            assert toggled == base, f"{disabled} off changed results"
