"""Hypothesis property tests over *arbitrary float* γ values.

The fixed "nice" γ values elsewhere could mask float-boundary bugs;
here γ is drawn from the full [0.5, 1] continuum. The miner and the
oracle share `ceil_gamma`'s epsilon guard, so they must agree for every
representable γ — this is the regression net for γ-arithmetic drift.
"""

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.miner import mine_maximal_quasicliques
from repro.core.naive import enumerate_maximal_quasicliques
from repro.core.quasiclique import ceil_gamma, degree_floor, is_quasi_clique
from repro.graph.adjacency import Graph


@st.composite
def small_graphs(draw, max_vertices: int = 9):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    pairs = list(itertools.combinations(range(n), 2))
    mask = draw(st.lists(st.booleans(), min_size=len(pairs), max_size=len(pairs)))
    return Graph.from_edges(
        [p for p, keep in zip(pairs, mask) if keep], vertices=range(n)
    )


gammas = st.floats(min_value=0.5, max_value=1.0, allow_nan=False)


@given(graph=small_graphs(), gamma=gammas, min_size=st.integers(2, 4))
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_miner_equals_oracle_for_any_float_gamma(graph, gamma, min_size):
    got = mine_maximal_quasicliques(graph, gamma, min_size).maximal
    want = enumerate_maximal_quasicliques(graph, gamma, min_size)
    assert got == want


@given(gamma=gammas, x=st.integers(min_value=0, max_value=200))
@settings(max_examples=200, deadline=None)
def test_ceil_gamma_basic_properties(gamma, x):
    c = ceil_gamma(gamma, x)
    # In range and monotone-consistent: a true ceiling up to epsilon.
    assert 0 <= c <= x
    assert c + 1 > gamma * x - 1e-9
    assert c >= gamma * x - 1e-6


@given(gamma=gammas, x=st.integers(min_value=0, max_value=100))
@settings(max_examples=100, deadline=None)
def test_ceil_gamma_monotone_in_x(gamma, x):
    assert ceil_gamma(gamma, x) <= ceil_gamma(gamma, x + 1)


@given(gamma=gammas, size=st.integers(min_value=1, max_value=60))
@settings(max_examples=100, deadline=None)
def test_degree_floor_within_size(gamma, size):
    floor = degree_floor(gamma, size)
    assert 0 <= floor <= size - 1


@given(graph=small_graphs(), gamma=gammas)
@settings(max_examples=40, deadline=None)
def test_predicate_monotone_in_gamma(graph, gamma):
    # A γ-quasi-clique is also a γ′-quasi-clique for every γ′ ≤ γ ≥ 0.5.
    for qc in enumerate_maximal_quasicliques(graph, gamma, 2):
        assert is_quasi_clique(graph, qc, 0.5)
