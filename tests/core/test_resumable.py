"""Tests for checkpointed, resumable mining."""

import pytest

from repro.core.miner import mine_maximal_quasicliques
from repro.core.resumable import ResumableMiner, load_checkpoint

from conftest import make_random_graph


class TestResumableMiner:
    def test_single_run_matches_plain_miner(self, tmp_path):
        g = make_random_graph(12, 0.55, seed=8)
        miner = ResumableMiner(g, 0.75, 3, str(tmp_path / "ckpt"))
        result = miner.run()
        want = mine_maximal_quasicliques(g, 0.75, 3).maximal
        assert result.maximal == want
        assert miner.remaining_roots() == 0

    def test_stop_and_resume(self, tmp_path):
        g = make_random_graph(14, 0.5, seed=9)
        ckpt = str(tmp_path / "ckpt")
        first = ResumableMiner(g, 0.75, 3, ckpt)
        first.run(stop_after_roots=4)
        assert first.remaining_roots() > 0
        # Fresh miner instance = process restart.
        second = ResumableMiner(g, 0.75, 3, ckpt)
        result = second.run()
        want = mine_maximal_quasicliques(g, 0.75, 3).maximal
        assert result.maximal == want
        assert second.remaining_roots() == 0

    def test_crash_mid_run_then_resume(self, tmp_path):
        g = make_random_graph(14, 0.5, seed=10)
        ckpt = str(tmp_path / "ckpt")

        class Boom(RuntimeError):
            pass

        miner = ResumableMiner(g, 0.75, 3, ckpt)
        # Simulate a crash: monkeypatch spawn_subgraph to explode after
        # a few roots, leaving a half-written checkpoint behind.
        import repro.core.resumable as mod

        real = mod.spawn_subgraph
        calls = {"n": 0}

        def flaky(base, root, k):
            calls["n"] += 1
            if calls["n"] > 3:
                raise Boom()
            return real(base, root, k)

        mod.spawn_subgraph = flaky
        try:
            with pytest.raises(Boom):
                miner.run()
        finally:
            mod.spawn_subgraph = real

        resumed = ResumableMiner(g, 0.75, 3, ckpt).run()
        want = mine_maximal_quasicliques(g, 0.75, 3).maximal
        assert resumed.maximal == want

    def test_rerun_after_completion_is_noop(self, tmp_path):
        g = make_random_graph(10, 0.5, seed=11)
        ckpt = str(tmp_path / "ckpt")
        ResumableMiner(g, 0.75, 3, ckpt).run()
        again = ResumableMiner(g, 0.75, 3, ckpt)
        result = again.run()
        want = mine_maximal_quasicliques(g, 0.75, 3).maximal
        assert result.maximal == want

    def test_checkpoint_loader(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        (ckpt / "roots.journal").write_text("1\n5\n9\n")
        (ckpt / "candidates.txt").write_text("1 2 3\n")
        state = load_checkpoint(
            str(ckpt / "candidates.txt"), str(ckpt / "roots.journal")
        )
        assert state.completed_roots == {1, 5, 9}
        assert state.candidates == {frozenset({1, 2, 3})}

    def test_min_size_one_isolated_roots(self, tmp_path):
        from repro.graph.adjacency import Graph

        g = Graph.from_edges([(0, 1)], vertices=range(3))
        result = ResumableMiner(g, 1.0, 1, str(tmp_path / "c")).run()
        assert result.maximal == {frozenset({0, 1}), frozenset({2})}
