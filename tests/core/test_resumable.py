"""Tests for checkpointed, resumable mining."""

import os
import signal
import subprocess
import sys
import time
import warnings
from pathlib import Path

import pytest

from repro.core.miner import mine_maximal_quasicliques
from repro.core.resumable import ResumableMiner, load_checkpoint

from conftest import make_random_graph


class TestResumableMiner:
    def test_single_run_matches_plain_miner(self, tmp_path):
        g = make_random_graph(12, 0.55, seed=8)
        miner = ResumableMiner(g, 0.75, 3, str(tmp_path / "ckpt"))
        result = miner.run()
        want = mine_maximal_quasicliques(g, 0.75, 3).maximal
        assert result.maximal == want
        assert miner.remaining_roots() == 0

    def test_stop_and_resume(self, tmp_path):
        g = make_random_graph(14, 0.5, seed=9)
        ckpt = str(tmp_path / "ckpt")
        first = ResumableMiner(g, 0.75, 3, ckpt)
        first.run(stop_after_roots=4)
        assert first.remaining_roots() > 0
        # Fresh miner instance = process restart.
        second = ResumableMiner(g, 0.75, 3, ckpt)
        result = second.run()
        want = mine_maximal_quasicliques(g, 0.75, 3).maximal
        assert result.maximal == want
        assert second.remaining_roots() == 0

    def test_crash_mid_run_then_resume(self, tmp_path):
        g = make_random_graph(14, 0.5, seed=10)
        ckpt = str(tmp_path / "ckpt")

        class Boom(RuntimeError):
            pass

        miner = ResumableMiner(g, 0.75, 3, ckpt)
        # Simulate a crash: monkeypatch spawn_subgraph to explode after
        # a few roots, leaving a half-written checkpoint behind.
        import repro.core.resumable as mod

        real = mod.spawn_subgraph
        calls = {"n": 0}

        def flaky(base, root, k):
            calls["n"] += 1
            if calls["n"] > 3:
                raise Boom()
            return real(base, root, k)

        mod.spawn_subgraph = flaky
        try:
            with pytest.raises(Boom):
                miner.run()
        finally:
            mod.spawn_subgraph = real

        resumed = ResumableMiner(g, 0.75, 3, ckpt).run()
        want = mine_maximal_quasicliques(g, 0.75, 3).maximal
        assert resumed.maximal == want

    def test_rerun_after_completion_is_noop(self, tmp_path):
        g = make_random_graph(10, 0.5, seed=11)
        ckpt = str(tmp_path / "ckpt")
        ResumableMiner(g, 0.75, 3, ckpt).run()
        again = ResumableMiner(g, 0.75, 3, ckpt)
        result = again.run()
        want = mine_maximal_quasicliques(g, 0.75, 3).maximal
        assert result.maximal == want

    def test_checkpoint_loader(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        (ckpt / "roots.journal").write_text("1\n5\n9\n")
        (ckpt / "candidates.txt").write_text("1 2 3\n")
        state = load_checkpoint(
            str(ckpt / "candidates.txt"), str(ckpt / "roots.journal")
        )
        assert state.completed_roots == {1, 5, 9}
        assert state.candidates == {frozenset({1, 2, 3})}

    def test_min_size_one_isolated_roots(self, tmp_path):
        from repro.graph.adjacency import Graph

        g = Graph.from_edges([(0, 1)], vertices=range(3))
        result = ResumableMiner(g, 1.0, 1, str(tmp_path / "c")).run()
        assert result.maximal == {frozenset({0, 1}), frozenset({2})}


#: Graph parameters shared by the parent and the SIGKILLed child — both
#: sides rebuild the identical G(n, p) with conftest's construction.
_KILL_N, _KILL_P, _KILL_SEED = 18, 0.5, 21

_CHILD_SCRIPT = """
import itertools, random, sys, time
from repro.graph.adjacency import Graph
import repro.core.resumable as resumable

n, seed, ckpt = int(sys.argv[1]), int(sys.argv[2]), sys.argv[3]
rng = random.Random(seed)
edges = [(u, v) for u, v in itertools.combinations(range(n), 2)
         if rng.random() < {p}]
g = Graph.from_edges(edges, vertices=range(n))

# Throttle root processing so the parent's SIGKILL reliably lands
# mid-run, right around a checkpoint flush.
real = resumable.spawn_subgraph
def slow(base, root, k):
    time.sleep(0.05)
    return real(base, root, k)
resumable.spawn_subgraph = slow

resumable.ResumableMiner(g, 0.75, 3, ckpt).run()
print("COMPLETED", flush=True)
"""


class TestSigkillResume:
    """Regression: SIGKILL mid-flush must not double-count or lose results."""

    def test_sigkill_mid_run_then_resume_equals_oracle(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", _CHILD_SCRIPT.format(p=_KILL_P),
             str(_KILL_N), str(_KILL_SEED), str(ckpt)],
            env=env, stdout=subprocess.PIPE, text=True,
        )
        journal = ckpt / "roots.journal"
        try:
            # Wait until some roots are journaled, then kill without warning.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if journal.is_file() and len(journal.read_text().splitlines()) >= 2:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("child never journaled any roots")
            os.kill(proc.pid, signal.SIGKILL)
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == -signal.SIGKILL
        assert "COMPLETED" not in out, "child finished before the kill landed"

        g = make_random_graph(_KILL_N, _KILL_P, seed=_KILL_SEED)
        want = mine_maximal_quasicliques(g, 0.75, 3).maximal
        done = set(int(line) for line in journal.read_text().splitlines())
        assert 0 < len(done) < len(set(g.vertices()))

        # Harden the scenario: simulate a torn trailing flush, as if the
        # kill interrupted candidates.txt mid-line. The bogus vertices
        # must NOT surface as a candidate after resume.
        with open(ckpt / "candidates.txt", "ab") as f:
            f.write(b"999999 999998")

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            resumed = ResumableMiner(g, 0.75, 3, str(ckpt)).run()
        assert resumed.maximal == want
        assert frozenset({999999, 999998}) not in resumed.candidates

        # No duplicates in the persisted candidate stream (double-count
        # guard: resumed run must not re-emit recovered candidates).
        lines = (ckpt / "candidates.txt").read_text().splitlines()
        assert len(lines) == len(set(lines))
