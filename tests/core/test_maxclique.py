"""Tests for the branch-and-bound maximum clique solver (networkx oracle)."""

import random

import networkx as nx
import pytest

from repro.core.maxclique import (
    branch_max_clique,
    greedy_color_order,
    is_clique,
    max_clique,
    max_clique_size,
)
from repro.graph.adjacency import Graph

from conftest import make_random_graph


def nx_max_clique_size(g: Graph) -> int:
    h = nx.Graph()
    h.add_nodes_from(g.vertices())
    h.add_edges_from(g.edges())
    return max((len(c) for c in nx.find_cliques(h)), default=0)


class TestMaxClique:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_networkx(self, seed):
        rng = random.Random(seed)
        g = make_random_graph(rng.randint(5, 18), rng.uniform(0.3, 0.8), seed=seed + 7)
        clique, stats = max_clique(g)
        assert is_clique(g, clique)
        assert len(clique) == nx_max_clique_size(g)
        assert stats.nodes > 0

    def test_empty_and_trivial(self):
        assert max_clique(Graph())[0] == set()
        g = Graph.from_edges([], vertices=[5])
        assert max_clique(g)[0] == {5}

    def test_complete_graph(self):
        g = Graph.from_edges([(u, v) for u in range(6) for v in range(u + 1, 6)])
        assert max_clique_size(g) == 6

    def test_bound_prunes_fire(self):
        g = make_random_graph(18, 0.6, seed=3)
        _, stats = max_clique(g)
        assert stats.bound_prunes > 0


class TestColoring:
    def test_proper_coloring(self):
        g = make_random_graph(15, 0.5, seed=4)
        colored = greedy_color_order(g, sorted(g.vertices()))
        color_of = dict(colored)
        for u, v in g.edges():
            assert color_of[u] != color_of[v]

    def test_sorted_by_color(self):
        g = make_random_graph(15, 0.5, seed=5)
        colored = greedy_color_order(g, sorted(g.vertices()))
        colors = [c for _, c in colored]
        assert colors == sorted(colors)

    def test_color_count_bounds_clique(self):
        g = make_random_graph(14, 0.5, seed=6)
        colored = greedy_color_order(g, sorted(g.vertices()))
        max_color = max((c for _, c in colored), default=0)
        assert max_color >= max_clique_size(g)


class TestBranchEntry:
    def test_beats_incumbent_or_none(self):
        g = make_random_graph(14, 0.6, seed=8)
        true_size = nx_max_clique_size(g)
        found = branch_max_clique(g, [], sorted(g.vertices()), incumbent_size=0)
        assert found is not None and len(found) == true_size
        assert is_clique(g, found)
        # With the incumbent already at the optimum, nothing can beat it.
        assert branch_max_clique(g, [], sorted(g.vertices()), true_size) is None

    def test_subtree_restriction(self, two_cliques_bridge):
        # Subtree rooted at S={4} with candidates {5,6,7} can only find
        # the second 4-clique.
        found = branch_max_clique(two_cliques_bridge, [4], [5, 6, 7], 0)
        assert found == {4, 5, 6, 7}
