"""Focused unit tests for Algorithm 2's mechanics (beyond oracle equivalence)."""

import random

import pytest

from repro.core.options import DEFAULT_OPTIONS, MinerOptions, MiningJob, ResultSink
from repro.core.quasiclique import is_quasi_clique
from repro.core.recursive_mine import (
    order_with_cover_tail,
    recursive_mine,
    select_cover_tail,
)
from repro.graph.adjacency import Graph

from conftest import GAMMAS, make_random_graph


def make_job(graph, gamma, min_size, options=DEFAULT_OPTIONS):
    return MiningJob(graph=graph, gamma=gamma, min_size=min_size,
                     sink=ResultSink(), options=options)


class TestCoverTailOrdering:
    def test_covered_vertices_parked_at_tail(self):
        order, pivots = order_with_cover_tail([1, 2, 3, 4, 5], covered={2, 4})
        assert order == [1, 3, 5, 2, 4]
        assert pivots == 3

    def test_empty_cover(self):
        order, pivots = order_with_cover_tail([3, 1, 2], covered=set())
        assert order == [3, 1, 2]
        assert pivots == 3

    def test_all_covered(self):
        order, pivots = order_with_cover_tail([1, 2], covered={1, 2})
        assert order == [1, 2]
        assert pivots == 0

    def test_select_cover_tail_disabled(self, figure4_graph):
        job = make_job(figure4_graph, 0.6, 3,
                       options=MinerOptions(use_cover_vertex=False))
        assert select_cover_tail(job, [0], [1, 2, 3, 4]) == set()


class TestReturnFlagSemantics:
    def test_true_iff_strict_superset_emitted(self):
        # Figure-4-style: S={a} extends into S2; found must be True.
        g = Graph.from_edges([(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (2, 3)])
        job = make_job(g, 0.6, 2)
        found = recursive_mine(job, [0], [1, 2, 3])
        assert found
        assert any(len(s) > 1 for s in job.sink.results())

    def test_false_when_nothing_extends(self):
        # Isolated root with an unreachable candidate at γ=1.
        g = Graph.from_edges([(0, 1)], vertices=[0, 1, 2])
        job = make_job(g, 1.0, 3)
        found = recursive_mine(job, [0], [1, 2])
        assert not found

    @pytest.mark.parametrize("seed", range(8))
    def test_flag_consistent_with_emissions(self, seed):
        rng = random.Random(seed)
        g = make_random_graph(rng.randint(5, 10), rng.uniform(0.4, 0.8), seed=seed + 71)
        gamma = rng.choice(GAMMAS)
        min_size = rng.randint(2, 4)
        job = make_job(g, gamma, min_size)
        root = min(g.vertices())
        ext = sorted(v for v in g.vertices() if v > root)
        found = recursive_mine(job, [root], ext)
        bigger = [s for s in job.sink.results() if len(s) > 1 and root in s]
        if found:
            assert bigger, "found=True requires an emitted superset of {root}"


class TestEmissionValidity:
    @pytest.mark.parametrize("seed", range(8))
    def test_all_emissions_valid(self, seed):
        rng = random.Random(seed + 100)
        g = make_random_graph(rng.randint(5, 11), rng.uniform(0.4, 0.8), seed=seed)
        gamma = rng.choice(GAMMAS)
        min_size = rng.randint(2, 4)
        job = make_job(g, gamma, min_size)
        for root in sorted(g.vertices()):
            ext = sorted(v for v in g.vertices() if v > root)
            if ext:
                recursive_mine(job, [root], ext)
        for s in job.sink.results():
            assert len(s) >= min_size
            assert is_quasi_clique(g, s, gamma)

    def test_size_guard_stops_loop(self):
        # min_size larger than |S|+|ext| must terminate without emissions.
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2)])
        job = make_job(g, 0.5, 10)
        assert not recursive_mine(job, [0], [1, 2])
        assert len(job.sink.results()) == 0
