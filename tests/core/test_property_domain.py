"""Hypothesis parity: the bitmask domain equals the dict/set implementation.

The bitset hot path (`repro.core.domain` + the `_masked` twins in
degrees/pruning/iterative_bounding/recursive_mine) must be
*result-equivalent* to the classic representation on arbitrary inputs:
same degree families, same rule verdicts, same maximal quasi-cliques.
These properties pin that equivalence vertex-by-vertex, not just
end-to-end.
"""

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.degrees import (
    compute_degrees,
    compute_degrees_masked,
    compute_ee_degrees,
    compute_ee_degrees_masked,
)
from repro.core.domain import TaskDomain
from repro.core.miner import mine_maximal_quasicliques
from repro.core.options import SET_PATH_OPTIONS
from repro.core.pruning import (
    cover_set,
    cover_set_masked,
    diameter_filter,
    diameter_filter_masked,
    find_critical_vertex,
    type1_degree_prunable,
    type2_degree_check,
)
from repro.core.quasiclique import ceil_gamma
from repro.graph.adjacency import Graph

GAMMA_CHOICES = [0.5, 0.6, 2 / 3, 0.75, 0.8, 0.9, 1.0]


@st.composite
def graph_and_state(draw, max_vertices: int = 10):
    """Random graph plus a disjoint (S, ext) split with S ≠ ∅."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    pairs = list(itertools.combinations(range(n), 2))
    mask = draw(st.lists(st.booleans(), min_size=len(pairs), max_size=len(pairs)))
    g = Graph.from_edges(
        [pair for pair, keep in zip(pairs, mask) if keep], vertices=range(n)
    )
    labels = draw(
        st.lists(
            st.sampled_from(["s", "ext", "out"]), min_size=n, max_size=n
        )
    )
    s_set = {v for v in range(n) if labels[v] == "s"}
    ext_set = {v for v in range(n) if labels[v] == "ext"}
    if not s_set:
        s_set, ext_set = {0}, ext_set - {0}
    return g, s_set, ext_set


def masked_state(g, s_set, ext_set):
    """Domain over S ∪ ext plus the two masks (the task's scope)."""
    domain = TaskDomain.from_graph(g, sorted(s_set | ext_set))
    return domain, domain.mask_of_globals(s_set), domain.mask_of_globals(ext_set)


def globalize(domain, local_dict):
    return {domain.verts[i]: d for i, d in local_dict.items()}


@given(state=graph_and_state())
@settings(max_examples=80, deadline=None)
def test_degree_views_agree(state):
    """Masked SS/ES/SE/EE degrees = dict/set degrees, restricted to S ∪ ext."""
    g, s_set, ext_set = state
    domain, s_mask, ext_mask = masked_state(g, s_set, ext_set)
    # The dict/set path sees the same scope the domain compacts.
    scope = g.subgraph(s_set | ext_set)
    want = compute_degrees(scope, s_set, ext_set)
    got = compute_degrees_masked(domain, s_mask, ext_mask)
    assert globalize(domain, got.in_s_of_s) == want.in_s_of_s
    assert globalize(domain, got.in_ext_of_s) == want.in_ext_of_s
    assert globalize(domain, got.in_s_of_ext) == want.in_s_of_ext
    want_ee = compute_ee_degrees(scope, ext_set, want)
    got_ee = compute_ee_degrees_masked(domain, ext_mask, got)
    assert globalize(domain, got_ee) == want_ee
    # Aggregates (the bound inputs) agree too.
    assert got.sum_s_degrees() == want.sum_s_degrees()
    assert got.min_s_degree() == want.min_s_degree()
    assert got.min_total_degree_in_s() == want.min_total_degree_in_s()
    assert got.ext_degrees_sorted() == want.ext_degrees_sorted()


@given(state=graph_and_state(), gamma=st.sampled_from(GAMMA_CHOICES))
@settings(max_examples=60, deadline=None)
def test_rule_verdicts_agree(state, gamma):
    """Type I/II verdicts per vertex agree when fed either degree view."""
    g, s_set, ext_set = state
    domain, s_mask, ext_mask = masked_state(g, s_set, ext_set)
    scope = g.subgraph(s_set | ext_set)
    want = compute_degrees(scope, s_set, ext_set)
    got = compute_degrees_masked(domain, s_mask, ext_mask)
    want_ee = compute_ee_degrees(scope, ext_set, want)
    got_ee = compute_ee_degrees_masked(domain, ext_mask, got)
    s_size = len(s_set)
    for u in ext_set:
        lu = domain.index[u]
        assert type1_degree_prunable(
            gamma, s_size, got.in_s_of_ext[lu], got_ee[lu]
        ) == type1_degree_prunable(gamma, s_size, want.in_s_of_ext[u], want_ee[u])
    for v in s_set:
        lv = domain.index[v]
        assert type2_degree_check(
            gamma, s_size, got.in_s_of_s[lv], got.in_ext_of_s[lv]
        ) == type2_degree_check(gamma, s_size, want.in_s_of_s[v], want.in_ext_of_s[v])


@given(state=graph_and_state(), gamma=st.sampled_from(GAMMA_CHOICES))
@settings(max_examples=60, deadline=None)
def test_critical_vertex_agrees(state, gamma):
    """P6 fires on the same (None vs found) condition under either view.

    Which qualifying vertex is returned may differ (dict order vs local
    ID order), so assert existence plus the defining equation instead.
    """
    g, s_set, ext_set = state
    domain, s_mask, ext_mask = masked_state(g, s_set, ext_set)
    scope = g.subgraph(s_set | ext_set)
    want_view = compute_degrees(scope, s_set, ext_set)
    got_view = compute_degrees_masked(domain, s_mask, ext_mask)
    lower = 1  # any fixed L_S exercises the equation identically
    want = find_critical_vertex(gamma, len(s_set), want_view, lower)
    got = find_critical_vertex(gamma, len(s_set), got_view, lower)
    assert (want is None) == (got is None)
    if got is not None:
        target = ceil_gamma(gamma, len(s_set) + lower - 1)
        assert got_view.in_s_of_s[got] + got_view.in_ext_of_s[got] == target
        assert got_view.in_ext_of_s[got] > 0


@given(state=graph_and_state(), gamma=st.sampled_from(GAMMA_CHOICES))
@settings(max_examples=60, deadline=None)
def test_cover_set_agrees(state, gamma):
    """P7 finds equally large cover sets; the covered mask is valid C_S(u)."""
    g, s_set, ext_set = state
    domain, s_mask, ext_mask = masked_state(g, s_set, ext_set)
    scope = g.subgraph(s_set | ext_set)
    want_view = compute_degrees(scope, s_set, ext_set)
    got_view = compute_degrees_masked(domain, s_mask, ext_mask)
    want = cover_set(scope, s_set, ext_set, gamma, want_view)
    got = cover_set_masked(domain, s_mask, ext_mask, gamma, got_view)
    assert (want is None) == (got is None)
    if got is not None:
        # Equal best |C_S(u)| (the winning u may differ on ties).
        assert got.covered_mask.bit_count() == len(want.covered)
        # The covered mask really is Γ_ext(u) ∩ ⋂_{v∈S∖Γ(u)} Γ(v).
        u_global = domain.verts[got.vertex]
        expected = {w for w in g.neighbors(u_global) if w in ext_set}
        for v in s_set:
            if not g.has_edge(u_global, v):
                expected &= set(g.neighbors(v))
        assert set(domain.globals_of(got.covered_mask)) == expected


@given(state=graph_and_state())
@settings(max_examples=60, deadline=None)
def test_diameter_filter_agrees(state):
    """Theorem 1 keeps exactly the same candidate set under either view."""
    g, s_set, ext_set = state
    domain, s_mask, ext_mask = masked_state(g, s_set, ext_set)
    scope = g.subgraph(s_set | ext_set)
    for anchor in s_set:
        want = diameter_filter(scope, anchor, sorted(ext_set))
        got = diameter_filter_masked(domain, domain.index[anchor], ext_mask)
        assert domain.globals_of(got) == want


@given(
    state=graph_and_state(max_vertices=9),
    gamma=st.sampled_from(GAMMA_CHOICES),
    min_size=st.integers(min_value=1, max_value=5),
    mode=st.sampled_from(["ego", "global"]),
)
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_end_to_end_miner_parity(state, gamma, min_size, mode):
    """The serial miner finds identical maximal families on either path."""
    g, _, _ = state
    bitset = mine_maximal_quasicliques(g, gamma, min_size, mode=mode).maximal
    classic = mine_maximal_quasicliques(
        g, gamma, min_size, options=SET_PATH_OPTIONS, mode=mode
    ).maximal
    assert bitset == classic
