"""Tests for kernel-expansion top-k mining (paper §8 future work, [32])."""

import random

import pytest

from repro.core.kernels import (
    expand_kernel,
    expansion_candidates,
    mine_kernels,
    top_k_quasicliques,
)
from repro.core.miner import mine_maximal_quasicliques
from repro.core.quasiclique import is_quasi_clique
from repro.graph.generators import planted_quasicliques

from conftest import make_random_graph


class TestExpansion:
    def test_candidates_are_frontier(self, two_cliques_bridge):
        assert expansion_candidates(two_cliques_bridge, {0, 1}) == {2, 3}
        assert expansion_candidates(two_cliques_bridge, {3}) == {0, 1, 2, 4}

    def test_expansion_keeps_validity_invariant(self):
        for seed in range(10):
            g = make_random_graph(14, 0.5, seed=seed + 3)
            rng = random.Random(seed)
            gamma = rng.choice([0.5, 0.75, 0.9])
            # Any single vertex is a valid kernel.
            v = rng.choice(sorted(g.vertices()))
            grown = expand_kernel(g, frozenset({v}), gamma)
            assert v in grown
            assert is_quasi_clique(g, grown, gamma)

    def test_expands_clique_kernel_into_quasiclique(self, figure4_graph):
        # Kernel {a,b,c} (a triangle) should grow into the 0.6-QC S2.
        grown = expand_kernel(figure4_graph, frozenset({0, 1, 2}), 0.6)
        assert {0, 1, 2} <= grown
        assert len(grown) >= 5
        assert is_quasi_clique(figure4_graph, grown, 0.6)

    def test_stalls_when_nothing_can_join(self, two_cliques_bridge):
        grown = expand_kernel(two_cliques_bridge, frozenset({0, 1, 2, 3}), 1.0)
        assert grown == frozenset({0, 1, 2, 3})

    def test_deterministic(self):
        g = make_random_graph(16, 0.45, seed=9)
        a = expand_kernel(g, frozenset({0}), 0.6)
        b = expand_kernel(g, frozenset({0}), 0.6)
        assert a == b


class TestMineKernels:
    def test_kernels_are_valid_at_kernel_gamma(self):
        g = make_random_graph(12, 0.6, seed=5)
        kernels, _ = mine_kernels(g, 0.9, 3)
        for kernel in kernels:
            assert is_quasi_clique(g, kernel, 0.9)

    def test_stricter_gamma_fewer_or_equal_kernels(self):
        g = make_random_graph(12, 0.6, seed=6)
        loose, _ = mine_kernels(g, 0.75, 3)
        strict, _ = mine_kernels(g, 1.0, 3)
        assert len(strict) <= len(loose)


class TestTopK:
    def test_validation(self, triangle_graph):
        with pytest.raises(ValueError):
            top_k_quasicliques(triangle_graph, 0.9, 0, 2)
        with pytest.raises(ValueError):
            top_k_quasicliques(triangle_graph, 0.9, 1, 2, kernel_gamma=0.6)

    def test_results_are_valid_and_sorted(self):
        g = make_random_graph(14, 0.55, seed=11)
        result = top_k_quasicliques(g, 0.6, k=3, min_size=3)
        sizes = [len(s) for s in result.top_k]
        assert sizes == sorted(sizes, reverse=True)
        for s in result.top_k:
            assert is_quasi_clique(g, s, 0.6)

    def test_recovers_planted_top_quasicliques(self):
        pg = planted_quasicliques(
            n=200, avg_degree=4, num_plants=3, plant_size=10, gamma=0.9, seed=13
        )
        result = top_k_quasicliques(pg.graph, 0.9, k=3, min_size=8)
        assert len(result.top_k) == 3
        for plant in pg.planted:
            assert any(plant <= found or len(found & plant) >= 8
                       for found in result.top_k), (
                f"planted core {sorted(plant)} not recovered"
            )

    def test_heuristic_close_to_exact_top_size(self):
        # [32]'s claim: the error vs the exact top-k is small. On small
        # graphs we can compare against the exact miner directly.
        for seed in range(5):
            g = make_random_graph(13, 0.55, seed=seed + 29)
            exact = mine_maximal_quasicliques(g, 0.6, 3).maximal
            if not exact:
                continue
            exact_best = max(len(s) for s in exact)
            heur = top_k_quasicliques(g, 0.6, k=1, min_size=3)
            if heur.top_k:
                assert len(heur.top_k[0]) >= exact_best - 2

    def test_kernel_gamma_defaults_to_midpoint(self):
        g = make_random_graph(10, 0.6, seed=2)
        result = top_k_quasicliques(g, 0.8, k=1, min_size=2)
        assert result.kernel_gamma == pytest.approx(0.9)
