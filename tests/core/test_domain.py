"""Tests for the compact-ID bitmask task domain."""

import pickle

import pytest

from repro.core.domain import TaskDomain, bit_list, bits, is_quasi_clique_masked
from repro.core.quasiclique import is_quasi_clique
from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph
from repro.graph.io import relabel_compact

from conftest import make_random_graph


class TestBits:
    def test_bits_ascending(self):
        assert list(bits(0)) == []
        assert list(bits(0b1011)) == [0, 1, 3]
        assert bit_list((1 << 70) | 1) == [0, 70]


class TestConstruction:
    def test_from_graph_full(self):
        g = Graph.from_edges([(10, 20), (20, 30), (10, 30), (30, 40)])
        d = TaskDomain.from_graph(g)
        assert d.verts == (10, 20, 30, 40)
        assert d.num_vertices == 4
        assert d.num_edges == 4
        # Local adjacency mirrors global adjacency under the relabeling.
        assert d.degree_in(d.index[30], d.full_mask) == g.degree(30)

    def test_from_graph_members_restricts(self):
        g = make_random_graph(15, 0.4, seed=5)
        members = [2, 3, 5, 7, 11]
        d = TaskDomain.from_graph(g, members)
        assert d.verts == tuple(members)
        assert d.to_graph() == g.subgraph(set(members))

    def test_from_graph_uses_csr_mask_export(self):
        g = make_random_graph(12, 0.35, seed=8)
        compact, _ = relabel_compact(g)
        csr = CSRGraph.from_graph(compact)
        assert TaskDomain.from_graph(csr) == TaskDomain.from_graph(compact)

    def test_from_adjacency_drops_foreign_and_self(self):
        # Neighbor 99 is not a key; 1 lists itself — both ignored.
        d = TaskDomain.from_adjacency({0: [1, 99], 1: [0, 1, 2], 2: [1]})
        assert d.verts == (0, 1, 2)
        assert d.num_edges == 2
        assert d.adj[d.index[0]] == 1 << d.index[1]

    def test_equivalent_to_graph_build(self):
        g = make_random_graph(20, 0.3, seed=2)
        adjacency = {v: g.neighbors(v) for v in g.vertices()}
        assert TaskDomain.from_adjacency(adjacency) == TaskDomain.from_graph(g)


class TestTranslation:
    def test_mask_round_trip(self):
        g = make_random_graph(10, 0.5, seed=1)
        d = TaskDomain.from_graph(g)
        subset = [1, 4, 7]
        mask = d.mask_of_globals(subset)
        assert d.globals_of(mask) == subset

    def test_mask_of_unknown_global_raises(self):
        d = TaskDomain.from_adjacency({0: [1], 1: [0]})
        with pytest.raises(KeyError):
            d.mask_of_globals([5])


class TestRestrict:
    def test_restrict_matches_subgraph(self):
        g = make_random_graph(18, 0.35, seed=4)
        d = TaskDomain.from_graph(g)
        keep_globals = [0, 3, 4, 8, 9, 12]
        sub = d.restrict(d.mask_of_globals(keep_globals))
        assert sub.verts == tuple(keep_globals)
        assert sub.to_graph() == g.subgraph(set(keep_globals))

    def test_restrict_shrinks_pickle(self):
        g = make_random_graph(40, 0.4, seed=6)
        d = TaskDomain.from_graph(g)
        sub = d.restrict(d.mask_of_globals(range(8)))
        assert len(pickle.dumps(sub)) < len(pickle.dumps(d))


class TestPickle:
    def test_round_trip(self):
        g = make_random_graph(16, 0.4, seed=3)
        d = TaskDomain.from_graph(g)
        clone = pickle.loads(pickle.dumps(d))
        assert clone == d
        assert clone.index == d.index  # index rebuilt lazily

    def test_smaller_than_graph_pickle(self):
        g = make_random_graph(60, 0.3, seed=7)
        d = TaskDomain.from_graph(g)
        assert len(pickle.dumps(d)) < len(pickle.dumps(g))


class TestMaskAlgebra:
    def test_connected_in(self):
        g = Graph.from_edges([(0, 1), (1, 2), (3, 4)], vertices=range(5))
        d = TaskDomain.from_graph(g)
        assert d.connected_in(d.mask_of_globals([0, 1, 2]))
        assert not d.connected_in(d.mask_of_globals([0, 1, 3]))
        assert not d.connected_in(0)
        assert d.connected_in(d.mask_of_globals([4]))

    def test_two_hop_mask(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4)])
        d = TaskDomain.from_graph(g)
        assert d.two_hop_mask(d.index[0]) == d.mask_of_globals([0, 1, 2])

    def test_is_quasi_clique_masked_matches_set_version(self):
        g = make_random_graph(12, 0.5, seed=9)
        d = TaskDomain.from_graph(g)
        for subset in ([0, 1, 2], [3, 4, 5, 6], [0, 5, 11], list(range(12))):
            for gamma in (0.5, 0.75, 1.0):
                assert is_quasi_clique_masked(
                    d, d.mask_of_globals(subset), gamma
                ) == is_quasi_clique(g, set(subset), gamma)
