"""Tests for the original-Quick baseline and its documented result misses."""

import random

import pytest

from repro.core.miner import mine_maximal_quasicliques
from repro.core.naive import enumerate_maximal_quasicliques
from repro.core.options import QUICK_OPTIONS
from repro.core.quasiclique import is_quasi_clique
from repro.core.quick import mine_quick, mine_quick_with_kcore, missed_results
from repro.graph.adjacency import Graph

from conftest import GAMMAS, make_random_graph


class TestQuickMissesResults:
    """Concrete instances (found by randomized search, now frozen) where
    the original Quick misses maximal quasi-cliques the paper's corrected
    algorithm finds — the Section 4 claim, reproduced."""

    CASES = [
        # (edges, gamma, min_size, a missed maximal quasi-clique)
        (
            [(0, 1), (0, 3), (1, 2), (1, 5), (2, 4), (2, 7), (4, 5), (5, 6), (6, 7)],
            0.5, 3, {0, 1, 3},
        ),
        ([(0, 1), (0, 2), (1, 4)], 0.6, 2, {0, 2}),
        ([(0, 1), (0, 5), (1, 3), (2, 4), (3, 4)], 0.5, 2, {0, 1, 5}),
    ]

    @pytest.mark.parametrize("edges,gamma,min_size,missed", CASES)
    def test_quick_misses_known_result(self, edges, gamma, min_size, missed):
        g = Graph.from_edges(edges)
        missed = frozenset(missed)
        want = enumerate_maximal_quasicliques(g, gamma, min_size)
        assert missed in want, "test case invalid: set not maximal"
        quick = mine_quick(g, gamma, min_size).maximal
        assert missed not in quick, "Quick unexpectedly found the result"
        full = mine_maximal_quasicliques(g, gamma, min_size).maximal
        assert full == want, "corrected algorithm must not miss anything"

    @pytest.mark.parametrize("edges,gamma,min_size,missed", CASES)
    def test_missed_results_helper(self, edges, gamma, min_size, missed):
        g = Graph.from_edges(edges)
        assert frozenset(missed) in missed_results(g, gamma, min_size)


class TestQuickNeverInventsResults:
    @pytest.mark.parametrize("seed", range(10))
    def test_quick_output_subset_of_truth(self, seed):
        rng = random.Random(seed)
        g = make_random_graph(rng.randint(4, 10), rng.uniform(0.3, 0.8), seed=seed + 5)
        gamma = rng.choice(GAMMAS)
        min_size = rng.randint(2, 4)
        want = enumerate_maximal_quasicliques(g, gamma, min_size)
        quick = mine_quick(g, gamma, min_size).maximal
        # Quick may miss maximal results but must never output an
        # invalid or non-maximal one after postprocessing.
        for qc in quick:
            assert is_quasi_clique(g, qc, gamma)
        assert quick <= want


class TestQuickOptions:
    def test_flags(self):
        assert not QUICK_OPTIONS.kcore_preprocess
        assert not QUICK_OPTIONS.check_before_critical_expand
        assert not QUICK_OPTIONS.check_empty_ext_candidate
        # The pruning arsenal itself stays on — Quick has the rules,
        # it just misses output checks.
        assert QUICK_OPTIONS.use_lower_bound
        assert QUICK_OPTIONS.use_cover_vertex

    def test_quick_with_kcore_still_subset(self):
        for seed in range(5):
            g = make_random_graph(10, 0.6, seed=seed + 41)
            want = enumerate_maximal_quasicliques(g, 0.75, 3)
            got = mine_quick_with_kcore(g, 0.75, 3).maximal
            assert got <= want
