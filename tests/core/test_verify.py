"""Tests for the result verifier."""

import pytest

from repro.core.miner import mine_maximal_quasicliques
from repro.core.verify import verify_results
from repro.graph.adjacency import Graph

from conftest import make_random_graph


class TestVerifyResults:
    def test_clean_results_pass(self):
        g = make_random_graph(10, 0.55, seed=3)
        results = mine_maximal_quasicliques(g, 0.75, 3).maximal
        report = verify_results(g, results, 0.75, 3, against_oracle=True)
        assert report.ok
        assert report.oracle_checked
        assert "OK" in report.summary()

    def test_detects_invalid_set(self, path_graph):
        bad = {frozenset({0, 4})}  # not connected / degree-deficient
        report = verify_results(path_graph, bad, 0.9, 2)
        assert not report.ok
        assert bad <= set(report.invalid)
        assert "FAILED" in report.summary()

    def test_detects_undersized(self, triangle_graph):
        report = verify_results(triangle_graph, {frozenset({0, 1})}, 1.0, 3)
        assert report.undersized

    def test_detects_dominated_pair(self, triangle_graph):
        results = {frozenset({0, 1}), frozenset({0, 1, 2})}
        report = verify_results(triangle_graph, results, 1.0, 2)
        assert report.dominated
        small, big = report.dominated[0]
        assert small < big

    def test_detects_missing_vs_oracle(self, two_cliques_bridge):
        results = {frozenset({0, 1, 2, 3})}  # second clique missing
        report = verify_results(two_cliques_bridge, results, 1.0, 3,
                                against_oracle=True)
        assert frozenset({4, 5, 6, 7}) in report.missing
        assert not report.ok

    def test_oracle_size_guard(self):
        g = make_random_graph(25, 0.2, seed=1)
        with pytest.raises(ValueError, match="limited"):
            verify_results(g, set(), 0.9, 3, against_oracle=True)

    def test_empty_results_on_empty_truth(self):
        g = Graph.from_edges([(0, 1)])
        report = verify_results(g, set(), 1.0, 3, against_oracle=True)
        assert report.ok
