"""Tests for maximality postprocessing."""

import random

import pytest

from repro.core.postprocess import postprocess_results, remove_non_maximal


def quadratic_reference(results):
    results = set(results)
    return {s for s in results if not any(s < other for other in results)}


class TestRemoveNonMaximal:
    def test_basic(self):
        sets = [frozenset({1, 2}), frozenset({1, 2, 3}), frozenset({4})]
        assert remove_non_maximal(sets) == {frozenset({1, 2, 3}), frozenset({4})}

    def test_keeps_incomparable(self):
        sets = [frozenset({1, 2}), frozenset({2, 3})]
        assert remove_non_maximal(sets) == set(sets)

    def test_duplicates_collapse(self):
        sets = [frozenset({1, 2}), frozenset({2, 1})]
        assert remove_non_maximal(sets) == {frozenset({1, 2})}

    def test_empty_inputs(self):
        assert remove_non_maximal([]) == set()
        assert remove_non_maximal([frozenset()]) == set()

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_quadratic_reference(self, seed):
        rng = random.Random(seed)
        universe = list(range(12))
        sets = [
            frozenset(rng.sample(universe, rng.randint(1, 6))) for _ in range(40)
        ]
        assert remove_non_maximal(sets) == quadratic_reference(sets)

    def test_chain_of_subsets(self):
        chain = [frozenset(range(i)) for i in range(1, 8)]
        assert remove_non_maximal(chain) == {frozenset(range(7))}


class TestPostprocessVerify:
    def test_verify_drops_invalid(self, triangle_graph):
        candidates = [frozenset({0, 1, 2}), frozenset({0, 9}), frozenset({0})]
        out = postprocess_results(
            candidates, graph=triangle_graph, gamma=1.0, min_size=2, verify=True
        )
        assert out == {frozenset({0, 1, 2})}

    def test_verify_requires_args(self):
        with pytest.raises(ValueError):
            postprocess_results([frozenset({0})], verify=True)

    def test_no_verify_passthrough(self):
        candidates = [frozenset({0, 9}), frozenset({0})]
        assert postprocess_results(candidates) == {frozenset({0, 9})}
