"""Tests for query-driven quasi-clique search."""

import random

import pytest

from repro.core.naive import enumerate_maximal_quasicliques
from repro.core.query import best_community, mine_containing, query_candidates
from repro.core.quasiclique import is_quasi_clique

from conftest import GAMMAS, make_random_graph


def oracle_containing(g, query, gamma, min_size):
    """Maximal quasi-cliques containing `query` via brute force.

    Maximality here is judged against ALL quasi-cliques of the graph —
    a superset of a QC ⊇ Q also contains Q, so restricting to the
    Q-containing family is sound.
    """
    all_max = enumerate_maximal_quasicliques(g, gamma, min_size)
    containing = {s for s in all_max if query <= s}
    # Non-maximal-globally sets that are maximal among Q-containing ones
    # do not exist: any superset of a Q-containing QC contains Q too.
    return containing


class TestQueryCandidates:
    def test_two_hop_intersection(self, figure4_graph):
        # Candidates for {e}: everything within 2 hops of e.
        cands = query_candidates(figure4_graph, {4})
        assert cands == set(range(9)) - {4}

    def test_multi_query_intersects(self, two_cliques_bridge):
        # 0 and 7 are 3 hops apart; only the bridge endpoints sit in
        # both 2-hop balls (the mining itself then proves no QC exists).
        assert query_candidates(two_cliques_bridge, {0, 7}) == {3, 4}
        cands = query_candidates(two_cliques_bridge, {0, 1})
        assert 2 in cands and 3 in cands


class TestMineContaining:
    @pytest.mark.parametrize("seed", range(12))
    def test_matches_oracle(self, seed):
        rng = random.Random(seed)
        g = make_random_graph(rng.randint(5, 11), rng.uniform(0.35, 0.8), seed=seed + 3)
        gamma = rng.choice(GAMMAS)
        min_size = rng.randint(1, 4)
        vertices = sorted(g.vertices())
        query = set(rng.sample(vertices, rng.randint(1, 2)))
        got = mine_containing(g, query, gamma, min_size).maximal
        want = oracle_containing(g, query, gamma, min_size)
        assert got == want, (
            f"query={sorted(query)} gamma={gamma} min_size={min_size}"
        )

    def test_results_contain_query(self, figure4_graph):
        result = mine_containing(figure4_graph, {0, 2}, 0.6, 3)
        for s in result.maximal:
            assert {0, 2} <= s
            assert is_quasi_clique(figure4_graph, s, 0.6)

    def test_query_itself_when_nothing_larger(self, two_cliques_bridge):
        result = mine_containing(two_cliques_bridge, {0, 1, 2, 3}, 1.0, 2)
        assert result.maximal == {frozenset({0, 1, 2, 3})}

    def test_empty_when_query_unsatisfiable(self, two_cliques_bridge):
        # 0 and 7 can never share a γ ≥ 0.5 quasi-clique (3 hops apart).
        result = mine_containing(two_cliques_bridge, {0, 7}, 0.5, 2)
        assert result.maximal == set()

    def test_validation(self, triangle_graph):
        with pytest.raises(ValueError, match="at least one"):
            mine_containing(triangle_graph, [], 0.9)
        with pytest.raises(ValueError, match="not in the graph"):
            mine_containing(triangle_graph, [99], 0.9)


class TestBestCommunity:
    def test_returns_largest(self, figure4_graph):
        best = best_community(figure4_graph, {4}, 0.6, 3)
        assert best is not None
        # S2 = {a,b,c,d,e} is the 0.6-community of e.
        assert best == frozenset({0, 1, 2, 3, 4})

    def test_none_when_unsatisfiable(self, two_cliques_bridge):
        assert best_community(two_cliques_bridge, {0, 7}, 0.5, 2) is None

    def test_empty_query_rejected(self, triangle_graph):
        with pytest.raises(ValueError, match="at least one"):
            best_community(triangle_graph, [], 0.9)
        with pytest.raises(ValueError, match="at least one"):
            best_community(triangle_graph, set(), 0.9)

    def test_absent_vertex_rejected(self, triangle_graph):
        with pytest.raises(ValueError, match="not in the graph"):
            best_community(triangle_graph, [99], 0.9)
        # A mixed query (one present, one absent) is rejected too.
        with pytest.raises(ValueError, match="not in the graph"):
            best_community(triangle_graph, [0, 99], 0.9)

    def test_tie_breaks_lexicographically(self):
        from repro.graph.adjacency import Graph

        # Two triangles sharing vertex 0: both are maximal 1.0-cliques
        # of size 3 containing 0 — the tie must break to the
        # lexicographically smallest sorted member list.
        g = Graph.from_edges([(0, 1), (0, 2), (1, 2), (0, 3), (0, 4), (3, 4)])
        found = mine_containing(g, {0}, 1.0, 3).maximal
        assert found == {frozenset({0, 1, 2}), frozenset({0, 3, 4})}
        assert best_community(g, {0}, 1.0, 3) == frozenset({0, 1, 2})
        # Restricting the query to one wing removes the tie entirely.
        assert best_community(g, {0, 3}, 1.0, 3) == frozenset({0, 3, 4})

    def test_tie_break_is_order_independent(self):
        from repro.graph.adjacency import Graph

        # Same structure with relabeled wings: {0, 5, 6} vs {0, 2, 9}.
        # sorted([0, 2, 9]) < sorted([0, 5, 6]) even though 9 > 6 — the
        # comparison is over the sorted vertex lists, not max IDs.
        g = Graph.from_edges([(0, 5), (0, 6), (5, 6), (0, 2), (0, 9), (2, 9)])
        assert best_community(g, {0}, 1.0, 3) == frozenset({0, 2, 9})


class TestQueryEdgeCases:
    def test_isolated_query_vertex_min_size_one(self):
        from repro.graph.adjacency import Graph

        g = Graph.from_edges([(0, 1), (1, 2), (0, 2)], vertices=range(4))
        result = mine_containing(g, {3}, 0.9, 1)
        assert result.maximal == {frozenset({3})}
        assert best_community(g, {3}, 0.9, 1) == frozenset({3})

    def test_isolated_query_vertex_min_size_two_is_empty(self):
        from repro.graph.adjacency import Graph

        g = Graph.from_edges([(0, 1), (1, 2), (0, 2)], vertices=range(4))
        assert mine_containing(g, {3}, 0.9, 2).maximal == set()
        assert best_community(g, {3}, 0.9, 2) is None

    def test_whole_graph_query(self, triangle_graph):
        result = mine_containing(triangle_graph, {0, 1, 2}, 1.0, 3)
        assert result.maximal == {frozenset({0, 1, 2})}
