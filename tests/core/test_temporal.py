"""Tests for temporal quasi-clique pattern mining."""

import itertools
import random

import pytest

from repro.core.temporal import (
    TemporalGraph,
    TemporalPattern,
    diversified_top_k,
    mine_temporal_patterns,
    verify_pattern,
)


def clique_edges(members):
    return list(itertools.combinations(sorted(members), 2))


@pytest.fixture
def two_phase_graph():
    """Community A lives in t=0..2, community B in t=2..4, overlap at t=2."""
    tg = TemporalGraph(num_snapshots=5)
    for u, v in clique_edges(range(4)):
        tg.add_edge(u, v, [0, 1, 2])
    for u, v in clique_edges(range(4, 8)):
        tg.add_edge(u, v, [2, 3, 4])
    tg.add_edge(0, 4, [2])
    return tg


class TestTemporalGraph:
    def test_snapshot_and_stable(self, two_phase_graph):
        g0 = two_phase_graph.snapshot(0)
        assert g0.has_edge(0, 1)
        assert not g0.has_edge(4, 5)
        stable = two_phase_graph.stable_graph(0, 2)
        assert stable.has_edge(0, 1)
        assert not stable.has_edge(0, 4)  # only active at t=2

    def test_validation(self):
        tg = TemporalGraph(3)
        with pytest.raises(ValueError):
            tg.add_edge(0, 1, [5])
        with pytest.raises(ValueError):
            tg.stable_graph(2, 1)
        with pytest.raises(ValueError):
            TemporalGraph(0)

    def test_self_loops_ignored(self):
        tg = TemporalGraph(2)
        tg.add_edge(1, 1, [0])
        assert tg.num_vertices == 0

    def test_edge_timestamps_accumulate(self):
        tg = TemporalGraph(4)
        tg.add_edge(0, 1, [0])
        tg.add_edge(1, 0, [2, 3])
        assert tg.edge_timestamps(0, 1) == {0, 2, 3}


class TestPattern:
    def test_cells_and_duration(self):
        p = TemporalPattern(frozenset({1, 2}), start=1, end=2)
        assert p.duration == 2
        assert p.cells() == {(1, 1), (1, 2), (2, 1), (2, 2)}

    def test_domination(self):
        small = TemporalPattern(frozenset({1, 2}), 1, 2)
        bigger_set = TemporalPattern(frozenset({1, 2, 3}), 1, 2)
        longer = TemporalPattern(frozenset({1, 2}), 0, 3)
        unrelated = TemporalPattern(frozenset({9}), 1, 2)
        assert bigger_set.dominates(small)
        assert longer.dominates(small)
        assert not small.dominates(bigger_set)
        assert not unrelated.dominates(small)
        assert not small.dominates(small)


class TestMining:
    def test_finds_both_communities_with_full_windows(self, two_phase_graph):
        result = mine_temporal_patterns(two_phase_graph, 1.0, 4, min_duration=2)
        a = TemporalPattern(frozenset(range(4)), 0, 2)
        b = TemporalPattern(frozenset(range(4, 8)), 2, 4)
        assert a in result.patterns
        assert b in result.patterns
        for p in result.patterns:
            assert verify_pattern(two_phase_graph, p, 1.0)

    def test_maximality_no_dominated_patterns(self, two_phase_graph):
        result = mine_temporal_patterns(two_phase_graph, 1.0, 3, min_duration=1)
        patterns = list(result.patterns)
        for p in patterns:
            assert not any(q.dominates(p) for q in patterns)

    def test_min_duration_filter(self, two_phase_graph):
        result = mine_temporal_patterns(two_phase_graph, 1.0, 4, min_duration=4)
        assert result.patterns == set()
        assert result.windows_mined == 3  # windows of length 4 and 5

    def test_windows_counted(self):
        tg = TemporalGraph(3)
        tg.add_edge(0, 1, [0, 1, 2])
        result = mine_temporal_patterns(tg, 1.0, 2)
        assert result.windows_mined == 6  # T(T+1)/2 windows for T=3
        # {0,1} persists over the whole horizon → single maximal pattern.
        assert result.patterns == {TemporalPattern(frozenset({0, 1}), 0, 2)}

    def test_patterns_valid_per_snapshot(self):
        rng = random.Random(5)
        tg = TemporalGraph(4)
        for u, v in itertools.combinations(range(8), 2):
            times = [t for t in range(4) if rng.random() < 0.6]
            if times:
                tg.add_edge(u, v, times)
        result = mine_temporal_patterns(tg, 0.75, 3)
        for p in result.patterns:
            assert verify_pattern(tg, p, 0.75)


class TestDiversification:
    def test_greedy_coverage(self):
        p1 = TemporalPattern(frozenset({1, 2, 3}), 0, 2)  # 9 cells
        p2 = TemporalPattern(frozenset({1, 2}), 0, 2)  # subset of p1's cells
        p3 = TemporalPattern(frozenset({8, 9}), 0, 0)  # disjoint, 2 cells
        top = diversified_top_k([p1, p2, p3], k=2)
        assert top[0] == p1
        assert top[1] == p3  # p2 adds nothing new

    def test_stops_when_no_gain(self):
        p1 = TemporalPattern(frozenset({1}), 0, 0)
        p2 = TemporalPattern(frozenset({1}), 0, 0)
        assert len(diversified_top_k([p1, p2], k=5)) == 1

    def test_k_validation(self):
        with pytest.raises(ValueError):
            diversified_top_k([], k=0)

    def test_deterministic(self, two_phase_graph):
        result = mine_temporal_patterns(two_phase_graph, 1.0, 3)
        a = diversified_top_k(result.patterns, k=3)
        b = diversified_top_k(result.patterns, k=3)
        assert a == b
