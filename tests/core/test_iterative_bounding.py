"""Tests for the Algorithm 1 subprocedure."""

import itertools
import random

import pytest

from repro.core.iterative_bounding import check_and_emit, iterative_bounding
from repro.core.options import DEFAULT_OPTIONS, MinerOptions, MiningJob, ResultSink
from repro.core.quasiclique import is_quasi_clique

from conftest import GAMMAS, make_random_graph


def make_job(graph, gamma, min_size, options=DEFAULT_OPTIONS):
    return MiningJob(
        graph=graph, gamma=gamma, min_size=min_size, sink=ResultSink(), options=options
    )


def oracle_has_proper_extension(g, s_set, ext_set, gamma, min_size):
    pool = sorted(ext_set)
    for r in range(1, len(pool) + 1):
        for combo in itertools.combinations(pool, r):
            s_prime = s_set | set(combo)
            if len(s_prime) >= min_size and is_quasi_clique(g, s_prime, gamma):
                return True
    return False


class TestContract:
    def test_false_implies_nonempty_ext(self):
        for seed in range(10):
            rng = random.Random(seed)
            g = make_random_graph(9, 0.6, seed=seed)
            job = make_job(g, rng.choice(GAMMAS), rng.randint(1, 4))
            s = [0]
            ext = sorted(v for v in g.vertices() if v > 0)
            if not iterative_bounding(job, s, ext):
                assert ext, "returned False with empty ext(S)"

    def test_requires_nonempty_s(self, triangle_graph):
        job = make_job(triangle_graph, 0.5, 2)
        with pytest.raises(ValueError):
            iterative_bounding(job, [], [0, 1])

    def test_emitted_candidates_are_valid(self):
        for seed in range(10):
            g = make_random_graph(9, 0.6, seed=seed + 50)
            gamma = GAMMAS[seed % len(GAMMAS)]
            job = make_job(g, gamma, 2)
            s = [0]
            ext = sorted(v for v in g.vertices() if v > 0)
            iterative_bounding(job, s, ext)
            for cand in job.sink.results():
                assert len(cand) >= 2
                assert is_quasi_clique(g, cand, gamma)


class TestPruningSoundness:
    @pytest.mark.parametrize("seed", range(20))
    def test_true_means_no_unexplored_extension(self, seed):
        """If Alg. 1 prunes extensions, the oracle agrees none exist.

        The subprocedure may mutate S (critical moves), so soundness is
        judged against the *final* S: no valid quasi-clique strictly
        extends the final S within final S ∪ ext.
        """
        rng = random.Random(seed)
        g = make_random_graph(rng.randint(5, 9), rng.uniform(0.4, 0.85), seed=seed + 9)
        gamma = rng.choice(GAMMAS)
        min_size = rng.randint(1, 4)
        job = make_job(g, gamma, min_size)
        s = [min(g.vertices())]
        ext = sorted(v for v in g.vertices() if v > s[0])
        original_s = list(s)
        pruned = iterative_bounding(job, s, ext)
        if pruned:
            # Any quasi-clique extending the ORIGINAL S via the ORIGINAL
            # candidates must be: (a) nonexistent, or (b) already emitted,
            # or (c) not larger than the final S (covered by caller).
            full_ext = set(v for v in g.vertices() if v > original_s[0])
            emitted = job.sink.results()
            final_s = set(s)
            for r in range(1, len(full_ext) + 1):
                for combo in itertools.combinations(sorted(full_ext), r):
                    q = set(original_s) | set(combo)
                    if len(q) >= min_size and is_quasi_clique(g, q, gamma):
                        covered = (
                            frozenset(q) in emitted
                            or q <= final_s
                            or any(q <= e for e in emitted)
                        )
                        # Type II pruning guarantees no *maximal* result
                        # lives strictly inside the pruned subtree; a
                        # non-maximal q may be legitimately skipped when
                        # a superset survives elsewhere in the tree.
                        has_superset = any(
                            len(bigger) > len(q) and is_quasi_clique(g, bigger, gamma)
                            for bigger in (
                                set(original_s) | set(c)
                                for rr in range(r + 1, len(full_ext) + 1)
                                for c in itertools.combinations(sorted(full_ext), rr)
                            )
                            if q < bigger
                        )
                        assert covered or has_superset, (
                            f"lost quasi-clique {sorted(q)} "
                            f"(gamma={gamma}, min_size={min_size})"
                        )


class TestCheckAndEmit:
    def test_emits_only_valid(self, figure4_graph):
        job = make_job(figure4_graph, 0.6, 4)
        assert check_and_emit(job, [0, 1, 2, 3])  # S1 is a 0.6-QC
        assert not check_and_emit(job, [0, 1, 2])  # below min_size
        assert not check_and_emit(job, [0, 5, 7, 8])  # not a QC
        assert job.sink.results() == {frozenset({0, 1, 2, 3})}


class TestOptionToggles:
    @pytest.mark.parametrize(
        "disabled",
        ["use_degree_prune", "use_upper_bound", "use_lower_bound", "use_critical_vertex"],
    )
    def test_each_rule_optional_without_changing_soundness(self, disabled):
        opts = MinerOptions(**{disabled: False})
        for seed in range(6):
            g = make_random_graph(8, 0.6, seed=seed + 77)
            job = make_job(g, 0.75, 3, options=opts)
            s = [0]
            ext = sorted(v for v in g.vertices() if v > 0)
            iterative_bounding(job, s, ext)
            for cand in job.sink.results():
                assert is_quasi_clique(g, cand, 0.75)
