"""Tests for the edge-density dense-subgraph utilities."""

import random

import pytest

from repro.core.density import (
    average_degree_density,
    densest_subgraph_peel,
    edge_density,
    enumerate_dense_subgraphs,
    filter_by_density,
    gamma_implies_density_bound,
    internal_edge_count,
    is_dense_subgraph,
)
from repro.core.miner import mine_maximal_quasicliques
from repro.core.naive import enumerate_quasicliques
from repro.graph.adjacency import Graph

from conftest import make_random_graph


class TestDensity:
    def test_basic_values(self, triangle_graph, path_graph):
        assert edge_density(triangle_graph, {0, 1, 2}) == 1.0
        assert edge_density(path_graph, {0, 1, 2}) == pytest.approx(2 / 3)
        assert edge_density(path_graph, {0}) == 1.0
        assert edge_density(path_graph, set()) == 0.0

    def test_internal_edges(self, two_cliques_bridge):
        assert internal_edge_count(two_cliques_bridge, {0, 1, 2, 3}) == 6
        assert internal_edge_count(two_cliques_bridge, {3, 4}) == 1

    def test_average_degree(self, triangle_graph):
        assert average_degree_density(triangle_graph, {0, 1, 2}) == 1.0

    def test_predicate(self, path_graph):
        assert is_dense_subgraph(path_graph, {0, 1}, 1.0)
        assert not is_dense_subgraph(path_graph, {0, 1, 2}, 0.7)


class TestCharikarPeel:
    def brute_densest(self, g):
        best = 0.0
        vertices = sorted(g.vertices())
        from itertools import combinations

        for r in range(1, len(vertices) + 1):
            for combo in combinations(vertices, r):
                best = max(best, average_degree_density(g, set(combo)))
        return best

    @pytest.mark.parametrize("seed", range(8))
    def test_half_approximation(self, seed):
        g = make_random_graph(10, 0.4, seed=seed)
        if g.num_edges == 0:
            return
        result = densest_subgraph_peel(g)
        opt = self.brute_densest(g)
        assert result.density == pytest.approx(
            average_degree_density(g, result.vertices)
        )
        assert result.density >= opt / 2 - 1e-9

    def test_clique_plus_tail(self):
        # 5-clique with a pendant path: the peel must find the clique.
        edges = [(u, v) for u in range(5) for v in range(u + 1, 5)]
        edges += [(4, 5), (5, 6), (6, 7)]
        g = Graph.from_edges(edges)
        result = densest_subgraph_peel(g)
        assert set(range(5)) <= result.vertices
        assert result.density >= 2.0

    def test_empty(self):
        result = densest_subgraph_peel(Graph())
        assert result.vertices == set()
        assert result.density == 0.0


class TestEnumeration:
    def test_matches_manual(self, two_cliques_bridge):
        dense = enumerate_dense_subgraphs(two_cliques_bridge, 1.0, 3)
        assert frozenset({0, 1, 2, 3}) in dense
        assert frozenset({4, 5, 6, 7}) in dense
        assert all(edge_density(two_cliques_bridge, set(s)) == 1.0 for s in dense)

    def test_quasicliques_are_dense(self):
        # Every γ-quasi-clique clears the γ edge-density bound.
        for seed in range(5):
            g = make_random_graph(9, 0.6, seed=seed + 17)
            for gamma in (0.5, 0.75, 0.9):
                for qc in enumerate_quasicliques(g, gamma, 2):
                    bound = gamma_implies_density_bound(gamma, len(qc))
                    assert edge_density(g, set(qc)) >= bound - 1e-9
                    assert bound >= gamma - 1e-9


class TestDoubleConstraint:
    def test_filter_keeps_dense_results(self):
        rng = random.Random(5)
        g = make_random_graph(12, 0.55, seed=31)
        mined = mine_maximal_quasicliques(g, 0.6, 3).maximal
        kept = filter_by_density(g, mined, threshold=0.8)
        assert kept <= mined
        for s in kept:
            assert edge_density(g, set(s)) >= 0.8
        # Thresholds at or below γ pass everything (density ≥ γ bound).
        assert filter_by_density(g, mined, threshold=0.6) == mined
