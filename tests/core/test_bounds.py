"""Tests for the U_S / L_S bounds (paper Eqs. 1–8).

The load-bearing property checks: for every actually-achievable
extension Z ⊆ ext with G(S∪Z) a valid quasi-clique, the bounds must
bracket |Z| — L_S ≤ |Z| ≤ U_S — and a None bound must mean no such Z
exists (soundness; the oracle provides ground truth).
"""

import itertools
import random

import pytest

from repro.core.bounds import (
    lemma2_feasible,
    lower_bound,
    lower_bound_min,
    prefix_sums_desc,
    upper_bound,
    upper_bound_min,
)
from repro.core.degrees import compute_degrees
from repro.core.quasiclique import is_quasi_clique

from conftest import GAMMAS, make_random_graph


def achievable_extension_sizes(g, s_set, ext_set, gamma):
    """|Z| for every Z ⊆ ext with G(S∪Z) a γ-quasi-clique (oracle)."""
    sizes = set()
    ext = sorted(ext_set)
    for r in range(0, len(ext) + 1):
        for combo in itertools.combinations(ext, r):
            if is_quasi_clique(g, s_set | set(combo), gamma):
                sizes.add(r)
    return sizes


class TestHelpers:
    def test_prefix_sums(self):
        assert prefix_sums_desc([5, 3, 1]) == [0, 5, 8, 9]
        assert prefix_sums_desc([]) == [0]

    def test_lemma2_feasible(self):
        # |S|=2, Σ_S d_S = 2, ext degrees [2, 1], γ=1: t=1 needs
        # 2 + 2 ≥ 2·ceil(1·2) = 4 → feasible; t=2 needs 2+3 ≥ 2·3 → no.
        sums = prefix_sums_desc([2, 1])
        assert lemma2_feasible(1.0, 2, 2, sums, 1)
        assert not lemma2_feasible(1.0, 2, 2, sums, 2)

    def test_upper_bound_min(self):
        # Eq. 3: floor(d_min/γ) + 1 − |S|.
        assert upper_bound_min(0.5, 2, 3) == 5
        assert upper_bound_min(1.0, 4, 3) == 0

    def test_lower_bound_min(self):
        # d_S^min=1, |S|=3, γ=0.9: need 1+t ≥ ceil(0.9(2+t)).
        assert lower_bound_min(0.9, 3, 1, 10) == 8
        # Already satisfied at t=0.
        assert lower_bound_min(0.5, 3, 1, 10) == 0
        # Infeasible within ext budget.
        assert lower_bound_min(1.0, 5, 0, 2) is None


class TestBoundSoundness:
    @pytest.mark.parametrize("seed", range(12))
    def test_bounds_bracket_achievable_sizes(self, seed):
        rng = random.Random(seed)
        g = make_random_graph(rng.randint(5, 10), rng.uniform(0.35, 0.85), seed=seed)
        gamma = rng.choice(GAMMAS)
        vertices = sorted(g.vertices())
        s_size = rng.randint(1, min(4, len(vertices) - 1))
        s_set = set(vertices[:s_size])
        ext_set = set(vertices[s_size:])
        view = compute_degrees(g, s_set, ext_set)
        u_s = upper_bound(gamma, len(s_set), view)
        l_s = lower_bound(gamma, len(s_set), view)
        sizes = achievable_extension_sizes(g, s_set, ext_set, gamma)
        positive = {t for t in sizes if t >= 1}
        if positive:
            # Some non-empty extension exists: both bounds must exist
            # and bracket every achievable size.
            assert u_s is not None, "U_S missed an achievable extension"
            assert max(positive) <= u_s
            assert l_s is not None, "L_S missed an achievable extension"
            assert l_s <= min(sizes)
        if 0 in sizes and l_s is not None:
            # S itself is a quasi-clique → the lower bound must be 0.
            assert l_s == 0

    def test_lower_bound_none_means_s_invalid(self):
        # L_S failure certifies S misses the degree floor (module doc).
        for seed in range(8):
            g = make_random_graph(8, 0.5, seed=seed)
            s_set = set(list(g.vertices())[:3])
            ext_set = set(g.vertices()) - s_set
            for gamma in (0.6, 0.9, 1.0):
                view = compute_degrees(g, s_set, ext_set)
                if lower_bound(gamma, len(s_set), view) is None:
                    assert not is_quasi_clique(g, s_set, gamma, require_connected=False)

    def test_empty_s_raises(self, triangle_graph):
        view = compute_degrees(triangle_graph, set(), {0, 1, 2})
        with pytest.raises(ValueError):
            upper_bound(0.5, 0, view)
        with pytest.raises(ValueError):
            lower_bound(0.5, 0, view)


class TestPaperExample:
    def test_figure4_bounds(self, figure4_graph):
        # S = {a}, ext = Γ(a) ∪ B(a) restricted: use {b, c, d, e}.
        s_set = {0}
        ext_set = {1, 2, 3, 4}
        view = compute_degrees(figure4_graph, s_set, ext_set)
        # a connects to all 4 candidates: d_min = 4, γ=0.6 →
        # U_min = floor(4/0.6)+1−1 = 6, capped by feasibility checks.
        u_s = upper_bound(0.6, 1, view)
        l_s = lower_bound(0.6, 1, view)
        assert u_s == 4  # all four can join: S2 = {a,b,c,d,e} is a QC
        assert l_s == 0  # {a} alone already satisfies the degree floor
