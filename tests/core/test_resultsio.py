"""Tests for result-file persistence and streaming postprocessing."""


from repro.core.miner import mine_maximal_quasicliques
from repro.core.options import MiningJob
from repro.core.resultsio import (
    FileResultSink,
    postprocess_file,
    read_results,
    write_results,
)
from repro.core.recursive_mine import recursive_mine

from conftest import make_random_graph


class TestRoundTrip:
    def test_write_read(self, tmp_path):
        results = {frozenset({3, 1, 2}), frozenset({7})}
        path = tmp_path / "res.txt"
        count = write_results(results, path, header="demo run")
        assert count == 2
        assert read_results(path) == results
        assert path.read_text().startswith("# demo run\n")

    def test_size_descending_order(self, tmp_path):
        results = {frozenset({1}), frozenset({1, 2, 3}), frozenset({4, 5})}
        path = tmp_path / "res.txt"
        write_results(results, path)
        lines = [l for l in path.read_text().splitlines() if not l.startswith("#")]
        assert lines == ["1 2 3", "4 5", "1"]

    def test_empty(self, tmp_path):
        path = tmp_path / "empty.txt"
        assert write_results(set(), path) == 0
        assert read_results(path) == set()


class TestPostprocessFile:
    def test_removes_non_maximal(self, tmp_path):
        src = tmp_path / "raw.txt"
        dst = tmp_path / "max.txt"
        write_results({frozenset({1, 2}), frozenset({1, 2, 3}), frozenset({9})}, src)
        read, kept = postprocess_file(src, dst)
        assert (read, kept) == (3, 2)
        assert read_results(dst) == {frozenset({1, 2, 3}), frozenset({9})}


class TestFileSink:
    def test_streaming_dedup_and_flush(self, tmp_path):
        path = tmp_path / "stream.txt"
        with FileResultSink(path) as sink:
            sink.emit([2, 1])
            sink.emit([1, 2])  # duplicate
            sink.emit([5])
            assert len(sink) == 2
            # Flushed immediately: visible before close.
            assert len(read_results(path)) == 2
        assert read_results(path) == {frozenset({1, 2}), frozenset({5})}

    def test_usable_as_mining_sink(self, tmp_path):
        g = make_random_graph(10, 0.6, seed=44)
        path = tmp_path / "mine.txt"
        with FileResultSink(path) as sink:
            job = MiningJob(graph=g, gamma=0.75, min_size=3, sink=sink)
            for root in sorted(g.vertices()):
                ext = sorted(v for v in g.vertices() if v > root)
                if ext:
                    recursive_mine(job, [root], ext)
        on_disk = read_results(path)
        assert on_disk == sink.results()
        # The persisted candidates postprocess to the exact answer.
        dst = tmp_path / "max.txt"
        postprocess_file(path, dst)
        want = mine_maximal_quasicliques(g, 0.75, 3).maximal
        assert read_results(dst) == want
