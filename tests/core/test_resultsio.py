"""Tests for result-file persistence and streaming postprocessing."""

import os

import pytest

from repro.core.miner import mine_maximal_quasicliques
from repro.core.options import MiningJob
from repro.core.resultsio import (
    FileResultSink,
    postprocess_file,
    read_results,
    write_results,
)
from repro.core.recursive_mine import recursive_mine

from conftest import make_random_graph


class TestRoundTrip:
    def test_write_read(self, tmp_path):
        results = {frozenset({3, 1, 2}), frozenset({7})}
        path = tmp_path / "res.txt"
        count = write_results(results, path, header="demo run")
        assert count == 2
        assert read_results(path) == results
        assert path.read_text().startswith("# demo run\n")

    def test_size_descending_order(self, tmp_path):
        results = {frozenset({1}), frozenset({1, 2, 3}), frozenset({4, 5})}
        path = tmp_path / "res.txt"
        write_results(results, path)
        lines = [l for l in path.read_text().splitlines() if not l.startswith("#")]
        assert lines == ["1 2 3", "4 5", "1"]

    def test_empty(self, tmp_path):
        path = tmp_path / "empty.txt"
        assert write_results(set(), path) == 0
        assert read_results(path) == set()


class TestCrashSafety:
    def test_write_results_is_atomic(self, tmp_path):
        path = tmp_path / "res.txt"
        write_results({frozenset({1, 2})}, path)
        write_results({frozenset({3, 4, 5})}, path, header="second run")
        # No temp droppings, and the content is the complete second write.
        assert os.listdir(tmp_path) == ["res.txt"]
        assert read_results(path) == {frozenset({3, 4, 5})}

    def test_read_skips_truncated_trailing_line(self, tmp_path):
        path = tmp_path / "torn.txt"
        # A kill -9 mid-write cuts "1 2 34\n" down to "1 2 3" — which
        # still parses, but as a *different* vertex set.
        path.write_text("7 8 9\n1 2 3")
        with pytest.warns(RuntimeWarning, match="crash-truncated"):
            got = read_results(path)
        assert got == {frozenset({7, 8, 9})}

    def test_read_complete_file_warns_nothing(self, tmp_path):
        import warnings

        path = tmp_path / "clean.txt"
        path.write_text("7 8 9\n1 2 3\n")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert read_results(path) == {
                frozenset({7, 8, 9}),
                frozenset({1, 2, 3}),
            }

    def test_torn_file_with_single_partial_line(self, tmp_path):
        path = tmp_path / "torn.txt"
        path.write_text("1 2")
        with pytest.warns(RuntimeWarning):
            assert read_results(path) == set()

    def test_append_mode_repairs_torn_tail(self, tmp_path):
        path = tmp_path / "resume.txt"
        path.write_text("7 8 9\n1 2 3")  # torn tail from a dead writer
        with FileResultSink(path, mode="a", seen={frozenset({7, 8, 9})}) as sink:
            sink.emit([4, 5, 6])
            sink.emit([7, 8, 9])  # deduped via the seed
        # The torn line is gone; no line ever splices old+new tokens.
        assert path.read_text() == "7 8 9\n4 5 6\n"
        assert read_results(path) == {frozenset({7, 8, 9}), frozenset({4, 5, 6})}

    def test_flush_fsyncs(self, tmp_path):
        path = tmp_path / "sync.txt"
        with FileResultSink(path) as sink:
            sink.emit([1, 2])
            sink.flush()  # must not raise; content durable on disk
            assert read_results(path) == {frozenset({1, 2})}

    def test_invalid_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="mode"):
            FileResultSink(tmp_path / "x.txt", mode="r")


class TestPostprocessFile:
    def test_removes_non_maximal(self, tmp_path):
        src = tmp_path / "raw.txt"
        dst = tmp_path / "max.txt"
        write_results({frozenset({1, 2}), frozenset({1, 2, 3}), frozenset({9})}, src)
        read, kept = postprocess_file(src, dst)
        assert (read, kept) == (3, 2)
        assert read_results(dst) == {frozenset({1, 2, 3}), frozenset({9})}


class TestFileSink:
    def test_streaming_dedup_and_flush(self, tmp_path):
        path = tmp_path / "stream.txt"
        with FileResultSink(path) as sink:
            sink.emit([2, 1])
            sink.emit([1, 2])  # duplicate
            sink.emit([5])
            assert len(sink) == 2
            # Flushed immediately: visible before close.
            assert len(read_results(path)) == 2
        assert read_results(path) == {frozenset({1, 2}), frozenset({5})}

    def test_usable_as_mining_sink(self, tmp_path):
        g = make_random_graph(10, 0.6, seed=44)
        path = tmp_path / "mine.txt"
        with FileResultSink(path) as sink:
            job = MiningJob(graph=g, gamma=0.75, min_size=3, sink=sink)
            for root in sorted(g.vertices()):
                ext = sorted(v for v in g.vertices() if v > root)
                if ext:
                    recursive_mine(job, [root], ext)
        on_disk = read_results(path)
        assert on_disk == sink.results()
        # The persisted candidates postprocess to the exact answer.
        dst = tmp_path / "max.txt"
        postprocess_file(path, dst)
        want = mine_maximal_quasicliques(g, 0.75, 3).maximal
        assert read_results(dst) == want
