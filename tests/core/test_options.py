"""Tests for miner options, stats, and result sinks."""

import threading

import pytest

from repro.core.options import (
    DEFAULT_OPTIONS,
    MinerOptions,
    MiningJob,
    MiningStats,
    ResultSink,
    ThreadSafeResultSink,
)
from repro.graph.adjacency import Graph


class TestMinerOptions:
    def test_defaults_are_full_algorithm(self):
        assert DEFAULT_OPTIONS.kcore_preprocess
        assert DEFAULT_OPTIONS.use_lower_bound
        assert DEFAULT_OPTIONS.check_before_critical_expand
        assert DEFAULT_OPTIONS.check_empty_ext_candidate

    def test_critical_vertex_needs_lower_bound(self):
        opts = MinerOptions(use_lower_bound=False)
        assert not opts.critical_vertex_enabled()
        assert MinerOptions().critical_vertex_enabled()

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_OPTIONS.use_lookahead = False  # type: ignore[misc]


class TestMiningJobValidation:
    def test_gamma_range(self, triangle_graph=None):
        g = Graph.from_edges([(0, 1)])
        with pytest.raises(ValueError):
            MiningJob(graph=g, gamma=0.0, min_size=2, sink=ResultSink())
        with pytest.raises(ValueError):
            MiningJob(graph=g, gamma=1.5, min_size=2, sink=ResultSink())
        with pytest.raises(ValueError, match="0.5"):
            MiningJob(graph=g, gamma=0.3, min_size=2, sink=ResultSink())

    def test_min_size(self):
        g = Graph.from_edges([(0, 1)])
        with pytest.raises(ValueError):
            MiningJob(graph=g, gamma=0.9, min_size=0, sink=ResultSink())


class TestStats:
    def test_merge(self):
        a = MiningStats(nodes_expanded=2, type1_pruned=3, mining_ops=10)
        b = MiningStats(nodes_expanded=1, type2_pruned=4, mining_ops=5)
        a.merge(b)
        assert a.nodes_expanded == 3
        assert a.type1_pruned == 3
        assert a.type2_pruned == 4
        assert a.mining_ops == 15


class TestSinks:
    def test_dedup(self):
        sink = ResultSink()
        sink.emit([1, 2, 3])
        sink.emit([3, 2, 1])
        assert len(sink) == 1
        assert sink.results() == {frozenset({1, 2, 3})}

    def test_results_returns_copy(self):
        sink = ResultSink()
        sink.emit([1])
        out = sink.results()
        out.add(frozenset({9}))
        assert len(sink) == 1

    def test_thread_safe_sink_under_contention(self):
        sink = ThreadSafeResultSink()

        def writer(base):
            for i in range(200):
                sink.emit([base * 1000 + i, base * 1000 + i + 500])

        threads = [threading.Thread(target=writer, args=(b,)) for b in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(sink) == 4 * 200
