"""Tests for SS/ES/SE/EE degree bookkeeping."""

import pytest

from repro.core.degrees import DegreeView, compute_degrees, compute_ee_degrees

from conftest import make_random_graph


def brute_degrees(g, s_set, ext_set):
    ss = {v: g.degree_in(v, s_set) for v in s_set}
    es = {v: g.degree_in(v, ext_set) for v in s_set}
    se = {u: g.degree_in(u, s_set) for u in ext_set}
    ee = {u: g.degree_in(u, ext_set) for u in ext_set}
    return ss, es, se, ee


class TestComputeDegrees:
    def test_hand_example(self, figure4_graph):
        # S = {a, b}, ext = {c, d, e} on the Figure 4 graph.
        s, ext = {0, 1}, {2, 3, 4}
        view = compute_degrees(figure4_graph, s, ext)
        assert view.in_s_of_s == {0: 1, 1: 1}
        assert view.in_ext_of_s == {0: 3, 1: 2}
        assert view.in_s_of_ext == {2: 2, 3: 1, 4: 2}
        ee = compute_ee_degrees(figure4_graph, ext, view)
        assert ee == {2: 2, 3: 2, 4: 2}

    def test_matches_brute_force(self):
        g = make_random_graph(18, 0.4, seed=13)
        s = set(range(0, 6))
        ext = set(range(6, 14))
        view = compute_degrees(g, s, ext)
        ss, es, se, ee = brute_degrees(g, s, ext)
        assert view.in_s_of_s == ss
        assert view.in_ext_of_s == es
        assert view.in_s_of_ext == se
        assert compute_ee_degrees(g, ext, view) == ee

    def test_aggregates(self, figure4_graph):
        s, ext = {0, 1, 2}, {3, 4}
        view = compute_degrees(figure4_graph, s, ext)
        assert view.sum_s_degrees() == sum(view.in_s_of_s.values())
        assert view.min_s_degree() == min(view.in_s_of_s.values())
        assert view.min_total_degree_in_s() == min(
            view.in_s_of_s[v] + view.in_ext_of_s[v] for v in s
        )
        assert view.ext_degrees_sorted() == sorted(
            view.in_s_of_ext.values(), reverse=True
        )

    def test_empty_ext(self, triangle_graph):
        view = compute_degrees(triangle_graph, {0, 1, 2}, set())
        assert view.in_ext_of_s == {0: 0, 1: 0, 2: 0}
        assert view.in_s_of_ext == {}
        assert view.ext_degrees_sorted() == []

    def test_empty_s_minima_raise_clear_error(self, triangle_graph):
        # Eqs. 1–8 presuppose S ≠ ∅; the minima must fail loudly (a bare
        # min() would raise an opaque "empty sequence" from deep inside
        # the bound computation).
        for view in (DegreeView(), compute_degrees(triangle_graph, set(), {0, 1, 2})):
            with pytest.raises(ValueError, match="min_total_degree_in_s.*empty S"):
                view.min_total_degree_in_s()
            with pytest.raises(ValueError, match="min_s_degree.*empty S"):
                view.min_s_degree()

    def test_ee_lazy_by_default(self, triangle_graph):
        view = compute_degrees(triangle_graph, {0}, {1, 2})
        assert view.in_ext_of_ext is None
        compute_ee_degrees(triangle_graph, {1, 2}, view)
        assert view.in_ext_of_ext == {1: 1, 2: 1}
