"""Tests for quasi-clique definitions and γ-arithmetic."""


import pytest

from repro.core.quasiclique import (
    ceil_gamma,
    degree_floor,
    diameter_bound,
    floor_div_gamma,
    is_quasi_clique,
    is_valid_quasi_clique,
    kcore_threshold,
    quasi_clique_deficits,
)
from repro.graph.adjacency import Graph


class TestGammaArithmetic:
    def test_ceil_gamma_basic(self):
        assert ceil_gamma(0.9, 9) == 9  # 8.1 → 9
        assert ceil_gamma(0.5, 4) == 2
        assert ceil_gamma(1.0, 7) == 7
        assert ceil_gamma(0.9, 0) == 0

    def test_ceil_gamma_float_guard(self):
        # 2/3 · 3 must be exactly 2, not 3 (naive ceil of 2.0000000004).
        assert ceil_gamma(2 / 3, 3) == 2
        assert ceil_gamma(0.1 + 0.2, 10) == 3

    def test_floor_div_gamma(self):
        assert floor_div_gamma(9, 0.9) == 10
        assert floor_div_gamma(2, 2 / 3) == 3
        with pytest.raises(ValueError):
            floor_div_gamma(1, 0)

    def test_degree_floor(self):
        # A member of a 0.9-QC of size 18 needs ≥ ceil(0.9·17) = 16.
        assert degree_floor(0.9, 18) == 16

    def test_kcore_threshold_matches_paper(self):
        # Table 2 settings: YouTube (0.9, 18) → 16; DBLP (0.8, 70) → 56.
        assert kcore_threshold(0.9, 18) == 16
        assert kcore_threshold(0.8, 70) == 56


class TestIsQuasiClique:
    def test_paper_example_s1_s2(self, figure4_graph):
        # S1 = {a,b,c,d}, S2 = S1 ∪ {e}; both are 0.6-quasi-cliques.
        s1 = {0, 1, 2, 3}
        s2 = s1 | {4}
        assert is_quasi_clique(figure4_graph, s1, 0.6)
        assert is_quasi_clique(figure4_graph, s2, 0.6)

    def test_degree_violation(self, path_graph):
        # Path 0-1-2: vertex 0 has 1 neighbor < ceil(0.9·2) = 2.
        assert not is_quasi_clique(path_graph, {0, 1, 2}, 0.9)
        assert is_quasi_clique(path_graph, {0, 1, 2}, 0.5)

    def test_disconnected_rejected(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        # γ=0.3 would pass degrees but the subgraph is disconnected.
        assert not is_quasi_clique(g, {0, 1, 2, 3}, 0.3)
        assert is_quasi_clique(g, {0, 1, 2, 3}, 0.3, require_connected=False)

    def test_singleton_and_edge(self):
        g = Graph.from_edges([(0, 1)])
        assert is_quasi_clique(g, {0}, 1.0)
        assert is_quasi_clique(g, {0, 1}, 1.0)
        assert not is_quasi_clique(g, set(), 0.5)

    def test_clique_is_1_quasiclique(self):
        g = Graph.from_edges([(u, v) for u in range(5) for v in range(u + 1, 5)])
        assert is_quasi_clique(g, set(range(5)), 1.0)

    def test_validity_includes_size(self, figure4_graph):
        s2 = {0, 1, 2, 3, 4}
        assert is_valid_quasi_clique(figure4_graph, s2, 0.6, 5)
        assert not is_valid_quasi_clique(figure4_graph, s2, 0.6, 6)


class TestDeficits:
    def test_zero_for_valid(self, triangle_graph):
        assert quasi_clique_deficits(triangle_graph, {0, 1, 2}, 1.0) == {
            0: 0, 1: 0, 2: 0,
        }

    def test_positive_for_missing_edges(self, path_graph):
        d = quasi_clique_deficits(path_graph, {0, 1, 2}, 1.0)
        assert d[0] == 1 and d[2] == 1 and d[1] == 0


class TestDiameterBound:
    def test_gamma_half_and_up(self):
        assert diameter_bound(0.5) == 2
        assert diameter_bound(0.9) == 2
        assert diameter_bound(1.0) == 2

    def test_small_gamma(self):
        assert diameter_bound(0.4) >= 3
        with pytest.raises(ValueError):
            diameter_bound(0.0)

    def test_bound_holds_empirically(self, figure4_graph):
        from repro.core.naive import enumerate_quasicliques
        from repro.graph.traversal import diameter

        for gamma in (0.5, 0.6, 0.75):
            for qc in enumerate_quasicliques(figure4_graph, gamma, 3):
                assert diameter(figure4_graph.subgraph(qc)) <= 2
