"""Tests for the brute-force oracle itself (hand-verified tiny cases)."""

import pytest

from repro.core.naive import (
    MAX_ORACLE_VERTICES,
    enumerate_maximal_quasicliques,
    enumerate_quasicliques,
    is_maximal_quasiclique,
)
from repro.graph.adjacency import Graph


class TestEnumerate:
    def test_triangle(self, triangle_graph):
        all_qcs = enumerate_quasicliques(triangle_graph, 1.0, 2)
        assert frozenset({0, 1, 2}) in all_qcs
        assert frozenset({0, 1}) in all_qcs
        maximal = enumerate_maximal_quasicliques(triangle_graph, 1.0, 2)
        assert maximal == {frozenset({0, 1, 2})}

    def test_paper_s1_not_maximal(self, figure4_graph):
        maximal = enumerate_maximal_quasicliques(figure4_graph, 0.6, 4)
        s1 = frozenset({0, 1, 2, 3})
        s2 = frozenset({0, 1, 2, 3, 4})
        assert s1 not in maximal  # S1 ⊂ S2, paper Section 3.1
        assert s2 in maximal or any(s2 < m for m in maximal)

    def test_min_size_filter(self, triangle_graph):
        assert enumerate_maximal_quasicliques(triangle_graph, 1.0, 4) == set()

    def test_two_cliques(self, two_cliques_bridge):
        maximal = enumerate_maximal_quasicliques(two_cliques_bridge, 1.0, 3)
        assert frozenset({0, 1, 2, 3}) in maximal
        assert frozenset({4, 5, 6, 7}) in maximal
        assert len(maximal) == 2

    def test_size_guard(self):
        g = Graph.from_edges([(i, i + 1) for i in range(MAX_ORACLE_VERTICES + 2)])
        with pytest.raises(ValueError, match="oracle limited"):
            enumerate_quasicliques(g, 0.5, 2)


class TestMaximalityOracle:
    def test_basic(self, two_cliques_bridge):
        assert is_maximal_quasiclique(two_cliques_bridge, frozenset({0, 1, 2, 3}), 1.0)
        assert not is_maximal_quasiclique(two_cliques_bridge, frozenset({0, 1, 2}), 1.0)

    def test_invalid_set_is_not_maximal(self, path_graph):
        assert not is_maximal_quasiclique(path_graph, frozenset({0, 4}), 0.9)
