"""Per-theorem soundness tests for the pruning rules (P1–P7).

Each Type I rule claims: a pruned u ∈ ext appears in no valid
quasi-clique S′ with S∪{u} ⊆ S′ ⊆ S∪ext. Each Type II rule claims: no
valid quasi-clique strictly extends S inside S∪ext. Both are verified
against the brute-force oracle on randomized small instances.
"""

import itertools
import random

import pytest

from repro.core.degrees import compute_degrees, compute_ee_degrees
from repro.core.bounds import lower_bound, upper_bound
from repro.core.pruning import (
    Type2Outcome,
    cover_set,
    diameter_filter,
    find_critical_vertex,
    type1_degree_prunable,
    type1_lower_prunable,
    type1_upper_prunable,
    type2_degree_check,
    type2_lower_prunable,
    type2_upper_prunable,
)
from repro.core.quasiclique import ceil_gamma, is_quasi_clique
from repro.graph.adjacency import Graph

from conftest import GAMMAS, make_random_graph


def random_state(seed):
    rng = random.Random(seed)
    g = make_random_graph(rng.randint(5, 10), rng.uniform(0.35, 0.85), seed=seed * 7 + 1)
    vertices = sorted(g.vertices())
    s_size = rng.randint(1, min(4, len(vertices) - 1))
    s_set = set(vertices[:s_size])
    ext_set = set(vertices[s_size:])
    gamma = rng.choice(GAMMAS)
    return g, s_set, ext_set, gamma


def extensions_containing(g, s_set, ext_set, gamma, must_contain):
    """Valid quasi-cliques S′ with S ∪ must_contain ⊆ S′ ⊆ S ∪ ext."""
    pool = sorted(ext_set - must_contain)
    found = []
    for r in range(len(pool) + 1):
        for combo in itertools.combinations(pool, r):
            s_prime = s_set | must_contain | set(combo)
            if is_quasi_clique(g, s_prime, gamma):
                found.append(frozenset(s_prime))
    return found


class TestType1Soundness:
    @pytest.mark.parametrize("seed", range(15))
    def test_pruned_ext_vertex_in_no_extension(self, seed):
        g, s_set, ext_set, gamma = random_state(seed)
        view = compute_degrees(g, s_set, ext_set)
        ee = compute_ee_degrees(g, ext_set, view)
        u_s = upper_bound(gamma, len(s_set), view)
        l_s = lower_bound(gamma, len(s_set), view)
        for u in ext_set:
            d_s_u, d_ext_u = view.in_s_of_ext[u], ee[u]
            pruned = type1_degree_prunable(gamma, len(s_set), d_s_u, d_ext_u)
            if not pruned and u_s is not None:
                pruned = type1_upper_prunable(gamma, len(s_set), d_s_u, u_s)
            if not pruned and l_s is not None:
                pruned = type1_lower_prunable(gamma, len(s_set), d_s_u, d_ext_u, l_s)
            if pruned:
                exts = extensions_containing(g, s_set, ext_set, gamma, {u})
                assert exts == [], f"Type I wrongly pruned {u}: {exts[:3]}"


class TestType2Soundness:
    @pytest.mark.parametrize("seed", range(15))
    def test_type2_kills_only_barren_subtrees(self, seed):
        g, s_set, ext_set, gamma = random_state(seed)
        view = compute_degrees(g, s_set, ext_set)
        u_s = upper_bound(gamma, len(s_set), view)
        l_s = lower_bound(gamma, len(s_set), view)
        fired_all = False
        fired_ext_only = False
        for v in s_set:
            d_s_v, d_ext_v = view.in_s_of_s[v], view.in_ext_of_s[v]
            outcome = type2_degree_check(gamma, len(s_set), d_s_v, d_ext_v)
            if outcome is Type2Outcome.ALL:
                fired_all = True
            elif outcome is Type2Outcome.EXT_ONLY:
                fired_ext_only = True
            if u_s is not None and type2_upper_prunable(gamma, len(s_set), d_s_v, u_s):
                fired_all = True
            if l_s is not None and type2_lower_prunable(
                gamma, len(s_set), d_s_v, d_ext_v, l_s
            ):
                fired_all = True
        if fired_all or fired_ext_only:
            # No valid quasi-clique strictly extends S within S ∪ ext.
            exts = extensions_containing(g, s_set, ext_set, gamma, set())
            proper = [e for e in exts if e > s_set]
            assert proper == [], f"Type II wrongly fired: {proper[:3]}"


class TestCriticalVertex:
    @pytest.mark.parametrize("seed", range(15))
    def test_extensions_contain_all_critical_neighbors(self, seed):
        g, s_set, ext_set, gamma = random_state(seed)
        view = compute_degrees(g, s_set, ext_set)
        l_s = lower_bound(gamma, len(s_set), view)
        if l_s is None:
            return
        v = find_critical_vertex(gamma, len(s_set), view, l_s)
        if v is None:
            return
        forced = set(g.neighbors_in(v, ext_set))
        assert forced, "critical vertex must have ext neighbors"
        for s_prime in extensions_containing(g, s_set, ext_set, gamma, set()):
            if s_prime > s_set:
                assert forced <= s_prime, (
                    f"Theorem 9 violated: {sorted(s_prime)} misses {sorted(forced)}"
                )

    def test_definition(self, figure4_graph):
        # Directed check of Definition 4 on a hand state.
        s_set, ext_set = {0, 1}, {2, 3, 4}
        view = compute_degrees(figure4_graph, s_set, ext_set)
        l_s = lower_bound(0.9, len(s_set), view)
        if l_s is not None:
            target = ceil_gamma(0.9, len(s_set) + l_s - 1)
            v = find_critical_vertex(0.9, len(s_set), view, l_s)
            if v is not None:
                assert view.in_s_of_s[v] + view.in_ext_of_s[v] == target


class TestCoverVertex:
    @pytest.mark.parametrize("seed", range(15))
    def test_covered_extensions_stay_quasicliques_with_u(self, seed):
        g, s_set, ext_set, gamma = random_state(seed)
        view = compute_degrees(g, s_set, ext_set)
        cv = cover_set(g, s_set, ext_set, gamma, view)
        if cv is None:
            return
        u, covered = cv.vertex, cv.covered
        assert covered <= ext_set and u not in covered
        # Eq. 9 guarantee: extending S with any subset of C_S(u) into a
        # quasi-clique Q keeps Q ∪ {u} a quasi-clique (so Q non-maximal).
        for r in range(1, len(covered) + 1):
            for combo in itertools.combinations(sorted(covered), r):
                q = s_set | set(combo)
                if is_quasi_clique(g, q, gamma):
                    assert is_quasi_clique(g, q | {u}, gamma), (
                        f"cover guarantee violated for Q={sorted(q)}, u={u}"
                    )

    def test_inapplicable_when_nonadjacent_s_vertex_weak(self):
        # u=2 clears d_S(u) ≥ ceil(γ|S|) but S-vertex 5 (non-adjacent to
        # u) has d_S(5) = 1 < ceil(0.5·3) = 2, disabling the rule for u;
        # no other ext vertex qualifies, so no cover vertex is selected.
        g = Graph.from_edges(
            [(0, 1), (0, 5), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)]
        )
        s_set, ext_set = {0, 1, 5}, {2, 3, 4}
        view = compute_degrees(g, s_set, ext_set)
        assert view.in_s_of_ext[2] == 2  # u=2 itself qualifies
        cv = cover_set(g, s_set, ext_set, 0.5, view)
        assert cv is None


class TestDiameterFilter:
    def test_keeps_two_hop_only(self, figure4_graph):
        # Anchor e: candidates within 2 hops are all 8 other vertices.
        kept = diameter_filter(figure4_graph, 4, [0, 1, 2, 3, 5, 6, 7, 8])
        assert kept == [0, 1, 2, 3, 5, 6, 7, 8]

    def test_drops_three_hop(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4)])
        assert diameter_filter(g, 0, [1, 2, 3, 4]) == [1, 2]

    def test_preserves_order(self):
        g = Graph.from_edges([(0, 1), (0, 2), (0, 3)])
        assert diameter_filter(g, 0, [3, 1, 2]) == [3, 1, 2]

    def test_soundness_no_valid_extension_uses_dropped(self):
        for seed in range(10):
            g, s_set, ext_set, gamma = random_state(seed)
            anchor = min(s_set)
            kept = set(diameter_filter(g, anchor, sorted(ext_set)))
            dropped = ext_set - kept
            for u in dropped:
                assert extensions_containing(g, s_set, ext_set, gamma, {u}) == []
