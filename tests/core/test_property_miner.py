"""Hypothesis property tests: the miner equals the oracle on random graphs.

This is the single most load-bearing test in the repository: the full
pipeline (k-core shrink → spawn → recursive mining with all pruning
rules → postprocessing) must produce exactly the maximal quasi-clique
family on arbitrary small graphs, for arbitrary (γ ≥ 0.5, τ_size).
"""

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.miner import mine_maximal_quasicliques
from repro.core.naive import enumerate_maximal_quasicliques
from repro.core.postprocess import remove_non_maximal
from repro.core.quasiclique import is_quasi_clique
from repro.graph.adjacency import Graph

GAMMA_CHOICES = [0.5, 0.6, 2 / 3, 0.7, 0.75, 0.8, 0.9, 1.0]


@st.composite
def small_graphs(draw, max_vertices: int = 10):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    pairs = list(itertools.combinations(range(n), 2))
    mask = draw(st.lists(st.booleans(), min_size=len(pairs), max_size=len(pairs)))
    edges = [pair for pair, keep in zip(pairs, mask) if keep]
    return Graph.from_edges(edges, vertices=range(n))


@given(
    graph=small_graphs(),
    gamma=st.sampled_from(GAMMA_CHOICES),
    min_size=st.integers(min_value=1, max_value=5),
    mode=st.sampled_from(["ego", "global"]),
)
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_miner_equals_oracle(graph, gamma, min_size, mode):
    got = mine_maximal_quasicliques(graph, gamma, min_size, mode=mode).maximal
    want = enumerate_maximal_quasicliques(graph, gamma, min_size)
    assert got == want


@given(graph=small_graphs(), gamma=st.sampled_from(GAMMA_CHOICES))
@settings(max_examples=40, deadline=None)
def test_results_are_valid_maximal_quasicliques(graph, gamma):
    result = mine_maximal_quasicliques(graph, gamma, 2)
    for qc in result.maximal:
        assert is_quasi_clique(graph, qc, gamma)
        # No other result strictly contains it.
        assert not any(qc < other for other in result.maximal)


@given(graph=small_graphs(max_vertices=9), gamma=st.sampled_from(GAMMA_CHOICES))
@settings(max_examples=30, deadline=None)
def test_candidate_superset_property(graph, gamma):
    """Raw candidates ⊇ maximal family; postprocessing = subset filter."""
    result = mine_maximal_quasicliques(graph, gamma, 2)
    want = enumerate_maximal_quasicliques(graph, gamma, 2)
    assert want <= result.candidates
    assert remove_non_maximal(result.candidates) == result.maximal
