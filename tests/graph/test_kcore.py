"""Tests for k-core peeling and core decomposition (networkx as oracle)."""

import networkx as nx
import pytest

from repro.graph.adjacency import Graph
from repro.graph.kcore import (
    core_numbers,
    degeneracy_order,
    k_core,
    k_core_vertices,
    max_core,
    peel_adjacency,
    shrink_to_quasiclique_core,
)

from conftest import make_random_graph


def to_nx(g: Graph) -> nx.Graph:
    h = nx.Graph()
    h.add_nodes_from(g.vertices())
    h.add_edges_from(g.edges())
    return h


class TestCoreNumbers:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_networkx(self, seed):
        g = make_random_graph(30, 0.15 + 0.05 * seed, seed=seed)
        assert core_numbers(g) == nx.core_number(to_nx(g))

    def test_empty(self):
        assert core_numbers(Graph()) == {}

    def test_clique(self):
        g = Graph.from_edges([(u, v) for u in range(5) for v in range(u + 1, 5)])
        assert core_numbers(g) == {v: 4 for v in range(5)}

    def test_max_core(self):
        g = make_random_graph(25, 0.3, seed=4)
        assert max_core(g) == max(nx.core_number(to_nx(g)).values())


class TestKCore:
    @pytest.mark.parametrize("k", [0, 1, 2, 3, 4])
    def test_matches_networkx(self, k):
        g = make_random_graph(30, 0.25, seed=11)
        ours = set(k_core(g, k).vertices())
        theirs = set(nx.k_core(to_nx(g), k).nodes())
        assert ours == theirs

    def test_all_degrees_at_least_k(self):
        g = make_random_graph(40, 0.2, seed=2)
        core = k_core(g, 3)
        for v in core.vertices():
            assert core.degree(v) >= 3

    def test_maximality(self):
        # No removed vertex could survive: each has < k neighbors in core.
        g = make_random_graph(40, 0.2, seed=6)
        k = 3
        core_v = k_core_vertices(g, k)
        # Greedy re-add check: adding back any single vertex keeps it under k.
        for v in g.vertices():
            if v not in core_v:
                assert g.degree_in(v, core_v) < k

    def test_k_zero_is_identity(self):
        g = make_random_graph(10, 0.3, seed=1)
        assert k_core(g, 0) == g

    def test_too_large_k_empty(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert k_core(g, 5).num_vertices == 0


class TestPeelAdjacency:
    def test_basic_peel(self):
        adj = {0: {1, 2}, 1: {0, 2}, 2: {0, 1}, 3: {0}}
        # 3 has degree 1 < 2; 0's set does not list 3 (asymmetric builds
        # happen mid-construction) so only 3 dies.
        peel_adjacency(adj, 2)
        assert 3 not in adj
        assert set(adj) == {0, 1, 2}

    def test_destination_only_vertices_count_but_never_peel(self):
        # Vertex 9 appears only as a destination: contributes to degree
        # of 0 but is itself untouchable (paper Alg. 6 note).
        adj = {0: {1, 9}, 1: {0, 9}}
        peel_adjacency(adj, 2)
        assert set(adj) == {0, 1}

    def test_cascade(self):
        # Path 0-1-2-3: 1-core keeps all, 2-core kills all.
        adj = {0: {1}, 1: {0, 2}, 2: {1, 3}, 3: {2}}
        peel_adjacency(adj, 2)
        assert adj == {}

    def test_k_zero_noop(self):
        adj = {0: set()}
        peel_adjacency(adj, 0)
        assert adj == {0: set()}


class TestDegeneracyOrder:
    def test_is_permutation(self):
        g = make_random_graph(20, 0.3, seed=8)
        order = degeneracy_order(g)
        assert sorted(order) == sorted(g.vertices())

    def test_degeneracy_property(self):
        # Each vertex has ≤ degeneracy neighbors later in the order.
        g = make_random_graph(20, 0.3, seed=8)
        order = degeneracy_order(g)
        pos = {v: i for i, v in enumerate(order)}
        d = max_core(g)
        for v in order:
            later = sum(1 for u in g.neighbors(v) if pos[u] > pos[v])
            assert later <= d


class TestQuasicliqueCore:
    def test_threshold(self):
        # γ=0.9, τ_size=18 → k = ceil(0.9·17) = 16 (paper's YouTube run).
        g = make_random_graph(30, 0.4, seed=5)
        shrunk = shrink_to_quasiclique_core(g, 0.9, 18)
        assert set(shrunk.vertices()) == set(k_core(g, 16).vertices())

    def test_preserves_valid_quasicliques(self):
        from repro.core.naive import enumerate_maximal_quasicliques

        g = make_random_graph(12, 0.6, seed=3)
        gamma, min_size = 0.6, 4
        shrunk = shrink_to_quasiclique_core(g, gamma, min_size)
        want = enumerate_maximal_quasicliques(g, gamma, min_size)
        for qc in want:
            assert qc <= set(shrunk.vertices())
