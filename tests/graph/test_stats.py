"""Tests for graph statistics (networkx as oracle)."""

import networkx as nx
import pytest

from repro.graph.adjacency import Graph
from repro.graph.stats import (
    degree_histogram,
    global_clustering_coefficient,
    graph_stats,
    local_clustering,
    triangle_count,
    wedge_count,
)

from conftest import make_random_graph


def to_nx(g: Graph) -> nx.Graph:
    h = nx.Graph()
    h.add_nodes_from(g.vertices())
    h.add_edges_from(g.edges())
    return h


class TestCounts:
    @pytest.mark.parametrize("seed", range(6))
    def test_triangles_match_networkx(self, seed):
        g = make_random_graph(20, 0.3, seed=seed)
        assert triangle_count(g) == sum(nx.triangles(to_nx(g)).values()) // 3

    @pytest.mark.parametrize("seed", range(4))
    def test_transitivity_matches_networkx(self, seed):
        g = make_random_graph(20, 0.35, seed=seed + 9)
        assert global_clustering_coefficient(g) == pytest.approx(
            nx.transitivity(to_nx(g))
        )

    def test_wedges(self, triangle_graph):
        assert wedge_count(triangle_graph) == 3
        assert triangle_count(triangle_graph) == 1

    def test_local_clustering(self, triangle_graph, path_graph):
        assert local_clustering(triangle_graph, 0) == 1.0
        assert local_clustering(path_graph, 1) == 0.0
        assert local_clustering(path_graph, 0) == 0.0  # degree < 2

    def test_degree_histogram(self):
        g = Graph.from_edges([(0, 1), (0, 2)], vertices=range(4))
        assert degree_histogram(g) == {2: 1, 1: 2, 0: 1}


class TestSummary:
    def test_matches_manual(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)], vertices=range(5))
        s = graph_stats(g)
        assert s.num_vertices == 5
        assert s.num_edges == 4
        assert s.min_degree == 0
        assert s.max_degree == 3
        assert s.mean_degree == pytest.approx(1.6)
        assert s.median_degree == 2
        assert s.degeneracy == 2
        assert s.isolated_vertices == 1
        assert s.density == pytest.approx(4 / 10)

    def test_empty(self):
        s = graph_stats(Graph())
        assert s.num_vertices == 0
        assert s.degree_heavy_tail_ratio() == 0.0

    def test_heavy_tail_on_ba(self):
        from repro.graph.generators import barabasi_albert

        s = graph_stats(barabasi_albert(300, 2, seed=3))
        assert s.degree_heavy_tail_ratio() > 3.0
