"""Hypothesis property tests for the graph substrate."""

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.kcore import core_numbers, k_core_vertices
from repro.graph.stats import triangle_count, wedge_count


@st.composite
def graphs(draw, max_vertices: int = 12):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    pairs = list(itertools.combinations(range(n), 2))
    mask = draw(st.lists(st.booleans(), min_size=len(pairs), max_size=len(pairs)))
    return Graph.from_edges(
        [p for p, keep in zip(pairs, mask) if keep], vertices=range(n)
    )


@given(g=graphs())
@settings(max_examples=60, deadline=None)
def test_handshake_lemma(g):
    assert sum(g.degree(v) for v in g.vertices()) == 2 * g.num_edges


@given(g=graphs())
@settings(max_examples=40, deadline=None)
def test_edge_list_round_trip(g):
    import tempfile, os

    fd, path = tempfile.mkstemp(suffix=".txt")
    os.close(fd)
    try:
        write_edge_list(g, path)
        back = read_edge_list(path)
        # Isolated vertices are not representable in an edge list.
        assert sorted(back.edges()) == sorted(g.edges())
    finally:
        os.remove(path)


@given(g=graphs(), k=st.integers(min_value=0, max_value=6))
@settings(max_examples=60, deadline=None)
def test_kcore_fixed_point_and_core_numbers(g, k):
    core_v = k_core_vertices(g, k)
    # Every survivor has ≥ k neighbors among survivors.
    for v in core_v:
        assert g.degree_in(v, core_v) >= k
    # Consistency with core numbers: v survives iff core(v) ≥ k.
    cores = core_numbers(g)
    assert core_v == {v for v, c in cores.items() if c >= k}


@given(g=graphs())
@settings(max_examples=40, deadline=None)
def test_triangles_bounded_by_wedges(g):
    assert 3 * triangle_count(g) <= wedge_count(g)


@given(g=graphs())
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_csr_equivalence(g):
    csr = CSRGraph.from_graph(g)
    assert csr.num_edges == g.num_edges
    for v in g.vertices():
        assert list(csr.neighbors(v)) == g.neighbors(v)
    assert sorted(csr.edges()) == sorted(g.edges())


@given(g=graphs(), data=st.data())
@settings(max_examples=40, deadline=None)
def test_subgraph_induced_property(g, data):
    vertices = sorted(g.vertices())
    keep = set(data.draw(st.lists(st.sampled_from(vertices), unique=True))) if vertices else set()
    sub = g.subgraph(keep)
    assert set(sub.vertices()) == keep
    for u, v in itertools.combinations(sorted(keep), 2):
        assert sub.has_edge(u, v) == g.has_edge(u, v)
