"""Unit tests for the Graph container."""


from repro.graph.adjacency import Graph

from conftest import make_random_graph


class TestConstruction:
    def test_empty(self):
        g = Graph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.vertices()) == []

    def test_from_edges(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_isolated_vertices_via_vertices_arg(self):
        g = Graph.from_edges([(0, 1)], vertices=range(5))
        assert g.num_vertices == 5
        assert g.degree(4) == 0

    def test_self_loops_dropped(self):
        g = Graph.from_edges([(0, 0), (0, 1)])
        assert g.num_edges == 1
        assert not g.has_edge(0, 0)

    def test_duplicate_edges_dropped(self):
        g = Graph.from_edges([(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_from_mapping(self):
        g = Graph({0: [1, 2], 1: [2]})
        assert g.num_edges == 3

    def test_add_edge_returns_flag(self):
        g = Graph()
        assert g.add_edge(0, 1) is True
        assert g.add_edge(0, 1) is False
        assert g.add_edge(2, 2) is False


class TestQueries:
    def test_neighbors_sorted(self):
        g = Graph.from_edges([(5, 1), (5, 9), (5, 3)])
        assert g.neighbors(5) == [1, 3, 9]

    def test_neighbor_set(self):
        g = Graph.from_edges([(0, 1), (0, 2)])
        assert g.neighbor_set(0) == {1, 2}

    def test_degree(self, figure4_graph):
        # Γ(d) = {a, c, e, h, i} in the paper's example.
        assert figure4_graph.degree(3) == 5

    def test_edges_each_once(self):
        g = make_random_graph(12, 0.5, seed=1)
        edges = list(g.edges())
        assert len(edges) == g.num_edges
        assert len(set(edges)) == len(edges)
        assert all(u < v for u, v in edges)

    def test_contains_iter_len(self):
        g = Graph.from_edges([(0, 1)])
        assert 0 in g and 2 not in g
        assert sorted(g) == [0, 1]
        assert len(g) == 2

    def test_equality(self):
        a = Graph.from_edges([(0, 1), (1, 2)])
        b = Graph.from_edges([(1, 2), (0, 1)])
        assert a == b
        b.add_edge(0, 2)
        assert a != b

    def test_degree_in_and_neighbors_in(self):
        g = Graph.from_edges([(0, 1), (0, 2), (0, 3), (2, 3)])
        assert g.degree_in(0, {1, 2}) == 2
        assert g.degree_in(0, set()) == 0
        assert g.neighbors_in(0, {3, 1}) == [1, 3]

    def test_degree_in_both_scan_directions(self):
        # degree_in picks the smaller side to scan; both must agree.
        g = make_random_graph(15, 0.4, seed=3)
        big = set(range(12))
        for v in g.vertices():
            expected = sum(1 for u in g.neighbors(v) if u in big)
            assert g.degree_in(v, big) == expected


class TestMutation:
    def test_remove_vertex(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2)])
        g.remove_vertex(1)
        assert g.num_vertices == 2
        assert g.num_edges == 1
        assert not g.has_vertex(1)
        assert g.neighbors(0) == [2]

    def test_copy_is_independent(self):
        g = Graph.from_edges([(0, 1)])
        h = g.copy()
        h.add_edge(1, 2)
        assert g.num_edges == 1
        assert h.num_edges == 2
        assert not g.has_vertex(2)


class TestSubgraph:
    def test_subgraph_preserves_ids(self):
        g = Graph.from_edges([(10, 20), (20, 30), (10, 30), (30, 40)])
        s = g.subgraph({10, 20, 30})
        assert sorted(s.vertices()) == [10, 20, 30]
        assert s.num_edges == 3
        assert not s.has_vertex(40)

    def test_subgraph_ignores_unknown_vertices(self):
        g = Graph.from_edges([(0, 1)])
        s = g.subgraph({0, 1, 99})
        assert sorted(s.vertices()) == [0, 1]

    def test_subgraph_of_random_graph_is_induced(self):
        g = make_random_graph(14, 0.5, seed=7)
        keep = set(range(0, 14, 2))
        s = g.subgraph(keep)
        for u in keep:
            for v in keep:
                if u < v:
                    assert s.has_edge(u, v) == g.has_edge(u, v)

    def test_empty_subgraph(self):
        g = Graph.from_edges([(0, 1)])
        s = g.subgraph(set())
        assert s.num_vertices == 0

    def test_subgraph_independent_of_parent(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        s = g.subgraph({0, 1})
        s.add_edge(0, 5)
        assert not g.has_vertex(5)
