"""Tests for BFS, 2-hop neighborhoods, and connectivity (networkx oracle)."""

import networkx as nx
import pytest

from repro.graph.adjacency import Graph
from repro.graph.traversal import (
    bfs_distances,
    connected_components,
    diameter,
    is_connected,
    is_connected_subset,
    two_hop_neighbors,
    within_two_hops,
)

from conftest import make_random_graph


def to_nx(g: Graph) -> nx.Graph:
    h = nx.Graph()
    h.add_nodes_from(g.vertices())
    h.add_edges_from(g.edges())
    return h


class TestBfs:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_networkx(self, seed):
        g = make_random_graph(25, 0.15, seed=seed)
        src = 0
        ours = bfs_distances(g, src)
        theirs = nx.single_source_shortest_path_length(to_nx(g), src)
        assert ours == dict(theirs)

    def test_max_depth(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
        assert bfs_distances(g, 0, max_depth=2) == {0: 0, 1: 1, 2: 2}


class TestTwoHop:
    def test_paper_example(self, figure4_graph):
        # B(e) = {f, g, h, i} ∪ Γ(e); two_hop_neighbors returns N+2 − {v}.
        e = 4
        expected_gamma = {0, 1, 2, 3}  # a, b, c, d
        expected_b = {5, 6, 7, 8}  # f, g, h, i
        assert two_hop_neighbors(figure4_graph, e) == expected_gamma | expected_b

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_bfs(self, seed):
        g = make_random_graph(20, 0.2, seed=seed)
        for v in g.vertices():
            dist = bfs_distances(g, v, max_depth=2)
            expected = {u for u, d in dist.items() if 0 < d <= 2}
            assert two_hop_neighbors(g, v) == expected

    def test_within_two_hops(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
        assert within_two_hops(g, 0, 2)
        assert not within_two_hops(g, 0, 3)
        assert within_two_hops(g, 0, 0)
        assert within_two_hops(g, 0, 1)


class TestConnectivity:
    def test_components(self):
        g = Graph.from_edges([(0, 1), (2, 3)], vertices=range(5))
        comps = sorted(connected_components(g), key=min)
        assert comps == [{0, 1}, {2, 3}, {4}]

    def test_is_connected(self, two_cliques_bridge):
        assert is_connected(two_cliques_bridge)
        g = Graph.from_edges([(0, 1), (2, 3)])
        assert not is_connected(g)
        assert is_connected(Graph())

    def test_subset_connectivity(self, two_cliques_bridge):
        assert is_connected_subset(two_cliques_bridge, {0, 1, 2, 3})
        assert not is_connected_subset(two_cliques_bridge, {0, 5})
        assert is_connected_subset(two_cliques_bridge, {3, 4})
        assert is_connected_subset(two_cliques_bridge, {2})
        assert is_connected_subset(two_cliques_bridge, set())


class TestDiameter:
    def test_path(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
        assert diameter(g) == 3

    def test_disconnected_raises(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        with pytest.raises(ValueError, match="disconnected"):
            diameter(g)

    def test_quasiclique_diameter_bound(self, figure4_graph):
        # Theorem 1 backdrop: any 0.6-quasi-clique has diameter ≤ 2.
        from repro.core.naive import enumerate_quasicliques

        for qc in enumerate_quasicliques(figure4_graph, 0.6, 3):
            sub = figure4_graph.subgraph(qc)
            assert diameter(sub) <= 2
