"""Tests for the CSR backend: interface-equivalent to the dict Graph."""

import random

import pytest

from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph
from repro.graph.io import relabel_compact

from conftest import make_random_graph


def pair(seed=3, n=20, p=0.3):
    g = make_random_graph(n, p, seed=seed)
    return g, CSRGraph.from_graph(g)


class TestConstruction:
    def test_from_edges_drops_dupes_and_loops(self):
        csr = CSRGraph.from_edges(4, [(0, 1), (1, 0), (2, 2), (1, 3)])
        assert csr.num_edges == 2
        assert not csr.has_edge(2, 2)

    def test_from_edges_range_check(self):
        with pytest.raises(ValueError, match="outside"):
            CSRGraph.from_edges(3, [(0, 5)])

    def test_from_graph_requires_compact_ids(self):
        g = Graph.from_edges([(10, 20)])
        with pytest.raises(ValueError, match="compact"):
            CSRGraph.from_graph(g)
        compact, _ = relabel_compact(g)
        assert CSRGraph.from_graph(compact).num_edges == 1

    def test_round_trip(self):
        g, csr = pair(seed=9)
        assert csr.to_graph() == g


class TestInterfaceEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_read_methods_match_dict_graph(self, seed):
        g, csr = pair(seed=seed)
        assert csr.num_vertices == g.num_vertices
        assert csr.num_edges == g.num_edges
        assert sorted(csr.vertices()) == sorted(g.vertices())
        assert sorted(csr.edges()) == sorted(g.edges())
        for v in g.vertices():
            assert list(csr.neighbors(v)) == g.neighbors(v)
            assert csr.neighbor_set(v) == g.neighbor_set(v)
            assert csr.degree(v) == g.degree(v)
        for u in range(g.num_vertices):
            for v in range(g.num_vertices):
                assert csr.has_edge(u, v) == g.has_edge(u, v)

    def test_degree_in_and_neighbors_in(self):
        g, csr = pair(seed=11)
        subset = set(range(0, 20, 3))
        for v in g.vertices():
            assert csr.degree_in(v, subset) == g.degree_in(v, subset)
            assert csr.neighbors_in(v, subset) == g.neighbors_in(v, subset)

    def test_subgraph_matches(self):
        g, csr = pair(seed=13)
        keep = set(range(0, 20, 2)) | {99}  # 99 unknown → ignored
        assert csr.subgraph(keep) == g.subgraph(keep - {99})

    def test_dunder_protocol(self):
        _, csr = pair(seed=1, n=5, p=0.5)
        assert len(csr) == 5
        assert 4 in csr and 5 not in csr
        assert sorted(csr) == [0, 1, 2, 3, 4]


class TestNeighborSetCache:
    """The neighbor-set cache admits hubs by degree, not by arrival order."""

    class TinyCacheCSR(CSRGraph):
        _set_cache_max = 3

    def hub_graph(self):
        # Vertices 0–2 form hubs (high degree); 3–14 are a sparse ring.
        edges = [(h, v) for h in range(3) for v in range(3, 15)]
        edges += [(0, 1), (0, 2), (1, 2)]
        edges += [(v, v + 1) for v in range(3, 14)]
        return self.TinyCacheCSR.from_edges(15, edges)

    def test_scan_cannot_evict_hubs(self):
        csr = self.hub_graph()
        # A full scan in ascending order touches the low-degree ring
        # vertices after the hubs; they must not displace them.
        for v in range(15):
            csr.neighbor_set(v)
        assert set(csr._set_cache) == {0, 1, 2}

    def test_cold_start_scan_still_admits_only_hubs(self):
        csr = self.hub_graph()
        # Worst case for the old first-come policy: the sparse tail is
        # queried *before* any hub.
        for v in range(14, -1, -1):
            csr.neighbor_set(v)
        assert set(csr._set_cache) == {0, 1, 2}

    def test_capacity_bound_holds(self):
        csr = self.TinyCacheCSR.from_edges(
            6, [(u, v) for u in range(6) for v in range(u + 1, 6)]
        )
        for v in range(6):  # regular graph: every vertex clears the threshold
            csr.neighbor_set(v)
        assert len(csr._set_cache) <= self.TinyCacheCSR._set_cache_max

    def test_small_graph_caches_everything(self):
        _, csr = pair(seed=21, n=10)  # n ≪ default capacity → all admitted
        for v in range(10):
            assert csr.neighbor_set(v) == frozenset(csr.neighbors(v))
        assert len(csr._set_cache) == 10

    def test_uncached_queries_stay_correct(self):
        csr = self.hub_graph()
        for v in range(15):
            assert csr.neighbor_set(v) == frozenset(csr.neighbors(v))


class TestAlgorithmsOnCSR:
    """The mining stack must run on the CSR backend unchanged."""

    def test_kcore_on_csr(self):
        from repro.graph.kcore import core_numbers, k_core_vertices

        g, csr = pair(seed=17, n=25, p=0.25)
        assert core_numbers(csr) == core_numbers(g)
        assert k_core_vertices(csr, 3) == k_core_vertices(g, 3)

    def test_traversal_on_csr(self):
        from repro.graph.traversal import bfs_distances, two_hop_neighbors

        g, csr = pair(seed=19, n=25, p=0.2)
        for v in (0, 5, 12):
            assert bfs_distances(csr, v) == bfs_distances(g, v)
            assert two_hop_neighbors(csr, v) == two_hop_neighbors(g, v)

    @pytest.mark.parametrize("seed", range(4))
    def test_mining_on_csr_equals_dict_graph(self, seed):
        from repro.core.miner import mine_maximal_quasicliques

        rng = random.Random(seed)
        g, csr = pair(seed=seed + 23, n=rng.randint(8, 14), p=rng.uniform(0.35, 0.7))
        gamma = rng.choice([0.5, 0.75, 0.9])
        want = mine_maximal_quasicliques(g, gamma, 3).maximal
        got = mine_maximal_quasicliques(csr, gamma, 3).maximal
        assert got == want

    def test_engine_on_csr(self):
        from repro.core.naive import enumerate_maximal_quasicliques
        from repro.gthinker import EngineConfig, mine_parallel

        g, csr = pair(seed=29, n=11, p=0.5)
        config = EngineConfig(decompose="timed", tau_time=10, time_unit="ops", tau_split=3)
        out = mine_parallel(csr, 0.75, 3, config)
        assert out.maximal == enumerate_maximal_quasicliques(g, 0.75, 3)

    def test_stats_on_csr(self):
        from repro.graph.stats import graph_stats

        g, csr = pair(seed=31)
        assert graph_stats(csr) == graph_stats(g)
