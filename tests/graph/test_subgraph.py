"""Tests for ego-network / spawn-subgraph extraction."""

import pytest

from repro.graph.adjacency import Graph
from repro.graph.kcore import k_core
from repro.graph.subgraph import candidate_extension, ego_network, spawn_subgraph
from repro.graph.traversal import bfs_distances

from conftest import make_random_graph


class TestEgoNetwork:
    @pytest.mark.parametrize("hops", [1, 2, 3])
    def test_matches_bfs(self, hops):
        g = make_random_graph(25, 0.15, seed=3)
        root = 0
        ego = ego_network(g, root, hops=hops)
        expected = set(bfs_distances(g, root, max_depth=hops))
        assert set(ego.vertices()) == expected

    def test_is_induced(self):
        g = make_random_graph(20, 0.3, seed=1)
        ego = ego_network(g, 5, hops=2)
        for u, v in ego.edges():
            assert g.has_edge(u, v)
        members = set(ego.vertices())
        for u in members:
            for v in members:
                if u < v and g.has_edge(u, v):
                    assert ego.has_edge(u, v)


class TestSpawnSubgraph:
    def test_contains_root_or_empty(self):
        g = make_random_graph(30, 0.25, seed=9)
        for root in g.vertices():
            sub = spawn_subgraph(g, root, k=3)
            assert sub.num_vertices == 0 or root in sub

    def test_only_larger_ids(self):
        g = make_random_graph(30, 0.25, seed=9)
        root = 10
        sub = spawn_subgraph(g, root, k=2)
        for v in sub.vertices():
            assert v >= root

    def test_degrees_at_least_k(self):
        g = make_random_graph(30, 0.3, seed=4)
        k = 3
        for root in list(g.vertices())[:10]:
            sub = spawn_subgraph(g, root, k)
            for v in sub.vertices():
                assert sub.degree(v) >= k

    def test_members_within_two_hops_of_root(self):
        g = make_random_graph(30, 0.2, seed=7)
        root = 2
        sub = spawn_subgraph(g, root, k=2)
        if root in sub:
            dist = bfs_distances(g, root, max_depth=2)
            for v in sub.vertices():
                assert v in dist

    def test_low_degree_root_gives_empty(self):
        g = Graph.from_edges([(0, 1), (1, 2), (1, 3), (2, 3)])
        assert spawn_subgraph(g, 0, k=2).num_vertices == 0

    def test_is_a_k_core(self):
        g = make_random_graph(40, 0.25, seed=12)
        k = 3
        sub = spawn_subgraph(g, 1, k)
        if sub.num_vertices:
            assert k_core(sub, k) == sub

    def test_candidate_extension(self):
        g = make_random_graph(30, 0.3, seed=2)
        sub = spawn_subgraph(g, 0, k=2)
        if 0 in sub:
            ext = candidate_extension(sub, 0)
            assert 0 not in ext
            assert ext == sorted(ext)
            assert set(ext) == set(sub.vertices()) - {0}
