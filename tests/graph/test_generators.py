"""Tests for the synthetic graph generators."""

import pytest

from repro.core.quasiclique import is_quasi_clique
from repro.graph.generators import (
    barabasi_albert,
    coexpression_like,
    erdos_renyi,
    gnm_random,
    planted_quasicliques,
    powerlaw_cluster,
    random_connected_graph,
)
from repro.graph.traversal import is_connected


class TestErdosRenyi:
    def test_determinism(self):
        assert erdos_renyi(50, 0.2, seed=7) == erdos_renyi(50, 0.2, seed=7)

    def test_seed_changes_graph(self):
        assert erdos_renyi(50, 0.2, seed=7) != erdos_renyi(50, 0.2, seed=8)

    def test_p_zero_and_one(self):
        assert erdos_renyi(10, 0.0, seed=1).num_edges == 0
        assert erdos_renyi(10, 1.0, seed=1).num_edges == 45

    def test_edge_count_near_expectation(self):
        g = erdos_renyi(200, 0.1, seed=3)
        expected = 0.1 * 200 * 199 / 2
        assert 0.7 * expected < g.num_edges < 1.3 * expected

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            erdos_renyi(10, 1.5)


class TestGnm:
    def test_exact_edge_count(self):
        g = gnm_random(30, 100, seed=2)
        assert g.num_vertices == 30
        assert g.num_edges == 100

    def test_too_many_edges(self):
        with pytest.raises(ValueError):
            gnm_random(5, 11)

    def test_determinism(self):
        assert gnm_random(30, 80, seed=5) == gnm_random(30, 80, seed=5)


class TestBarabasiAlbert:
    def test_edge_count(self):
        g = barabasi_albert(100, 3, seed=1)
        assert g.num_edges == (100 - 3) * 3

    def test_heavy_tail(self):
        g = barabasi_albert(400, 2, seed=9)
        degrees = sorted((g.degree(v) for v in g.vertices()), reverse=True)
        # Hubs should be far above the mean degree (~4).
        assert degrees[0] > 15

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            barabasi_albert(5, 0)
        with pytest.raises(ValueError):
            barabasi_albert(5, 5)

    def test_determinism(self):
        assert barabasi_albert(60, 2, seed=4) == barabasi_albert(60, 2, seed=4)


class TestPowerlawCluster:
    def test_sizes(self):
        g = powerlaw_cluster(150, 3, 0.5, seed=2)
        assert g.num_vertices == 150
        assert g.num_edges == (150 - 3) * 3

    def test_triangle_closing_raises_clustering(self):
        import networkx as nx

        def avg_clustering(g):
            h = nx.Graph()
            h.add_nodes_from(g.vertices())
            h.add_edges_from(g.edges())
            return nx.average_clustering(h)

        plc = avg_clustering(powerlaw_cluster(300, 3, 0.9, seed=6))
        ba = avg_clustering(barabasi_albert(300, 3, seed=6))
        assert plc > ba


class TestPlanted:
    def test_planted_sets_are_quasicliques(self):
        pg = planted_quasicliques(
            n=200, avg_degree=4, num_plants=3, plant_size=9, gamma=0.85, seed=5
        )
        assert len(pg.planted) == 3
        for plant in pg.planted:
            assert len(plant) == 9
            assert is_quasi_clique(pg.graph, plant, 0.85)

    def test_overlapping_plants(self):
        pg = planted_quasicliques(
            n=150, avg_degree=4, num_plants=4, plant_size=8, gamma=0.9, seed=3, overlap=3
        )
        for a, b in zip(pg.planted, pg.planted[1:]):
            assert len(a & b) >= 1
        for plant in pg.planted:
            assert is_quasi_clique(pg.graph, plant, 0.9)

    def test_background_models(self):
        for model in ("ba", "plc", "er"):
            pg = planted_quasicliques(
                n=80, avg_degree=4, num_plants=1, plant_size=6, gamma=0.8,
                seed=1, background=model,
            )
            assert pg.graph.num_vertices == 80
        with pytest.raises(ValueError):
            planted_quasicliques(80, 4, 1, 6, 0.8, background="nope")

    def test_determinism(self):
        a = planted_quasicliques(100, 4, 2, 7, 0.9, seed=11)
        b = planted_quasicliques(100, 4, 2, 7, 0.9, seed=11)
        assert a.graph == b.graph
        assert a.planted == b.planted


class TestCoexpression:
    def test_modules_are_quasicliques(self):
        pg = coexpression_like(
            n_genes=120, n_modules=4, module_size=10, gamma=0.85, seed=2
        )
        assert len(pg.planted) == 4
        for module in pg.planted:
            assert is_quasi_clique(pg.graph, module, 0.85)


class TestRandomConnected:
    def test_connected(self):
        g = random_connected_graph(40, 0.05, seed=1)
        assert g.num_vertices == 40
        assert is_connected(g)
