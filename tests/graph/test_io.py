"""Tests for graph readers/writers."""

import pytest

from repro.graph.adjacency import Graph
from repro.graph.io import (
    read_adjacency,
    read_edge_list,
    relabel_compact,
    write_adjacency,
    write_edge_list,
)

from conftest import make_random_graph


class TestEdgeList:
    def test_round_trip(self, tmp_path):
        g = make_random_graph(20, 0.3, seed=5)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        assert read_edge_list(path) == g

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# SNAP header\n\n% konect header\n0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.num_edges == 2

    def test_header_written(self, tmp_path):
        g = Graph.from_edges([(0, 1)])
        path = tmp_path / "g.txt"
        write_edge_list(g, path, header="synthetic analog\nseed=1")
        text = path.read_text()
        assert text.startswith("# synthetic analog\n# seed=1\n")
        assert read_edge_list(path).num_edges == 1

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("42\n")
        with pytest.raises(ValueError, match="malformed"):
            read_edge_list(path)

    def test_extra_columns_tolerated(self, tmp_path):
        # SNAP files sometimes carry weights/timestamps in extra columns.
        path = tmp_path / "g.txt"
        path.write_text("0 1 0.5\n1 2 0.9\n")
        assert read_edge_list(path).num_edges == 2


class TestAdjacencyFormat:
    def test_round_trip_preserves_isolated(self, tmp_path):
        g = Graph.from_edges([(0, 1)], vertices=range(4))
        path = tmp_path / "g.adj"
        write_adjacency(g, path)
        h = read_adjacency(path)
        assert h == g
        assert h.num_vertices == 4

    def test_random_round_trip(self, tmp_path):
        g = make_random_graph(25, 0.25, seed=9)
        path = tmp_path / "g.adj"
        write_adjacency(g, path)
        assert read_adjacency(path) == g


class TestRelabel:
    def test_compact_relabel(self):
        g = Graph.from_edges([(100, 7), (7, 55)])
        h, mapping = relabel_compact(g)
        assert sorted(h.vertices()) == [0, 1, 2]
        assert mapping == {7: 0, 55: 1, 100: 2}
        assert h.has_edge(mapping[100], mapping[7])
        assert h.num_edges == g.num_edges
