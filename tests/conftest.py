"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.graph.adjacency import Graph

#: γ values used across parameterized tests — all in the paper's γ ≥ 0.5
#: regime, including a non-dyadic rational to exercise float guards.
GAMMAS = [0.5, 0.6, 2 / 3, 0.75, 0.8, 0.9, 1.0]


def make_random_graph(n: int, p: float, seed: int) -> Graph:
    """Small G(n, p) with all n vertices present (isolated ones too)."""
    rng = random.Random(seed)
    edges = [
        (u, v) for u, v in itertools.combinations(range(n), 2) if rng.random() < p
    ]
    return Graph.from_edges(edges, vertices=range(n))


@pytest.fixture
def figure4_graph() -> Graph:
    """The paper's Figure 4 example graph (a..i mapped to 0..8).

    Γ(d) = {a, c, e, h, i} (degree 5), B(e) = {f, g, h, i}, and
    S1 = {a, b, c, d}, S2 = S1 ∪ {e} are both 0.6-quasi-cliques with
    S1 non-maximal — the exact properties the paper's Section 3 walks
    through, asserted in tests.
    """
    ids = {x: i for i, x in enumerate("abcdefghi")}
    edges = [
        ("a", "b"), ("a", "c"), ("a", "d"), ("a", "e"),
        ("b", "c"), ("b", "e"),
        ("c", "d"), ("c", "e"),
        ("d", "e"), ("d", "h"), ("d", "i"),
        ("f", "g"), ("f", "h"),
        ("g", "h"),
        ("h", "i"),
        ("b", "f"), ("c", "g"),
    ]
    return Graph.from_edges([(ids[u], ids[v]) for u, v in edges])


@pytest.fixture
def triangle_graph() -> Graph:
    return Graph.from_edges([(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def path_graph() -> Graph:
    return Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4)])


@pytest.fixture
def two_cliques_bridge() -> Graph:
    """Two 4-cliques joined by a single bridge edge."""
    edges = list(itertools.combinations(range(4), 2))
    edges += [(u + 4, v + 4) for u, v in itertools.combinations(range(4), 2)]
    edges.append((3, 4))
    return Graph.from_edges(edges)
