"""Fidelity tests: every worked example and numeric claim in the paper text.

These tests pin the implementation to the paper's own illustrations —
the Figure 4 graph walkthrough (Section 3.1), the S1/S2 quasi-clique
example, the diameter-2 argument, Lemma 1, Lemma 2, and the parameter
arithmetic behind the Table 2 runs.

The mining-based examples run as a backend-conformance corpus: each is
parametrized over all five executors (serial, threaded, process,
cluster, simulated) via the ``mine`` fixture, which also cross-checks
every backend's output against the reference enumerator — the paper's
claims must hold identically no matter which engine produced the
result.
"""

import itertools

import pytest

from repro.core.bounds import lemma2_feasible, prefix_sums_desc
from repro.core.naive import enumerate_maximal_quasicliques
from repro.core.quasiclique import ceil_gamma, is_quasi_clique, kcore_threshold
from repro.graph.traversal import diameter, two_hop_neighbors
from repro.gthinker.cluster import mine_cluster
from repro.gthinker.config import EngineConfig
from repro.gthinker.engine import mine_parallel
from repro.gthinker.engine_mp import mine_multiprocess
from repro.gthinker.simulation import simulate_cluster

# Vertex labels of Figure 4 mapped onto IDs used by the fixture.
A, B, C, D, E, F, G, H, I = range(9)

BACKENDS = ("serial", "threaded", "process", "cluster", "simulated")


@pytest.fixture(params=BACKENDS)
def mine(request):
    """Mine with one executor, cross-checked against the enumerator."""
    backend = request.param

    def _mine(graph, gamma, min_size):
        if backend == "serial":
            out = mine_parallel(graph, gamma, min_size, EngineConfig())
        elif backend == "threaded":
            out = mine_parallel(
                graph, gamma, min_size,
                EngineConfig(num_machines=1, threads_per_machine=2),
            )
        elif backend == "process":
            out = mine_multiprocess(
                graph, gamma, min_size,
                EngineConfig(backend="process", num_procs=2,
                             queue_capacity=4, batch_size=2),
            )
        elif backend == "cluster":
            out = mine_cluster(
                graph, gamma, min_size,
                EngineConfig(backend="cluster", num_procs=2,
                             queue_capacity=4, batch_size=2,
                             heartbeat_period=0.02, heartbeat_timeout=5.0),
                timeout=120.0,
            )
        else:
            out = simulate_cluster(
                graph, gamma, min_size,
                EngineConfig(num_machines=2, threads_per_machine=2),
            )
        expected = enumerate_maximal_quasicliques(graph, gamma, min_size)
        assert out.maximal == expected, f"{backend} diverges from the enumerator"
        return out.maximal

    return _mine


class TestFigure4Notation:
    """Section 3.1's notation walkthrough on the Figure 4 graph."""

    def test_gamma_d_and_degree(self, figure4_graph):
        # "Γ(vd) = {va, vc, ve, vh, vi} and d(vd) = 5"
        assert figure4_graph.neighbor_set(D) == {A, C, E, H, I}
        assert figure4_graph.degree(D) == 5

    def test_two_hop_of_e(self, figure4_graph):
        # "Γ(ve) = {va, vb, vc, vd}, B(ve) = {vf, vg, vh, vi}, and
        #  B̄(ve) consisting of all vertices"
        assert figure4_graph.neighbor_set(E) == {A, B, C, D}
        b_bar = two_hop_neighbors(figure4_graph, E)  # N+2 minus {e}
        assert b_bar == set(range(9)) - {E}
        strictly_two = b_bar - figure4_graph.neighbor_set(E)
        assert strictly_two == {F, G, H, I}

    def test_s1_s2_quasicliques(self, figure4_graph, mine):
        # "If we set γ = 0.6, then both S1 and S2 are γ-quasi-cliques ...
        #  since S1 ⊂ S2, G(S1) is not a maximal γ-quasi-clique."
        s1 = {A, B, C, D}
        s2 = s1 | {E}
        assert is_quasi_clique(figure4_graph, s1, 0.6)
        assert is_quasi_clique(figure4_graph, s2, 0.6)
        maximal = mine(figure4_graph, 0.6, 4)
        assert frozenset(s1) not in maximal

    def test_s1_degree_arithmetic(self, figure4_graph):
        # "every vertex in S1 has at least 2 neighbors ... (and 2/3 > 0.6)"
        s1 = {A, B, C, D}
        degrees = [figure4_graph.degree_in(v, s1) for v in s1]
        assert min(degrees) == 2
        assert ceil_gamma(0.6, 3) == 2


class TestDiameterArgument:
    """P1: for γ ≥ 0.5 a quasi-clique has diameter ≤ 2 (Section 3.2)."""

    @pytest.mark.parametrize("gamma", [0.5, 0.6, 0.75, 0.9])
    def test_empirical_bound(self, figure4_graph, mine, gamma):
        for qc in mine(figure4_graph, gamma, 3):
            assert diameter(figure4_graph.subgraph(qc)) <= 2

    def test_shared_neighbor_argument(self, figure4_graph, mine):
        # Two non-adjacent members of a γ ≥ 0.5 quasi-clique must share
        # a neighbor inside it.
        for qc in mine(figure4_graph, 0.5, 4):
            for u, v in itertools.combinations(sorted(qc), 2):
                if not figure4_graph.has_edge(u, v):
                    shared = (
                        figure4_graph.neighbor_set(u)
                        & figure4_graph.neighbor_set(v)
                        & qc
                    )
                    assert shared, f"{u},{v} violate the diameter argument"


class TestLemma1:
    """Lemma 1 [44]: a + n < ceil(γ(b + n)) ⇒ ∀i ∈ [0, n]: a + i < ceil(γ(b + i))."""

    @pytest.mark.parametrize("gamma", [0.5, 0.6, 2 / 3, 0.8, 0.9, 1.0])
    def test_exhaustive_small_range(self, gamma):
        for a in range(0, 6):
            for b in range(0, 6):
                for n in range(0, 6):
                    if a + n < ceil_gamma(gamma, b + n):
                        for i in range(0, n + 1):
                            assert a + i < ceil_gamma(gamma, b + i), (
                                f"Lemma 1 fails at a={a} b={b} n={n} i={i} γ={gamma}"
                            )


class TestLemma2:
    """Lemma 2: the prefix-sum feasibility condition is sound."""

    def test_numeric_instance(self):
        # |S| = 2, Σ_S d_S(v) = 2, ext degrees (sorted desc) = [1, 1, 0]:
        # adding t=2 vertices under γ=0.9 demands 2·ceil(0.9·3) = 6 > 2+2.
        sums = prefix_sums_desc([1, 1, 0])
        assert not lemma2_feasible(0.9, 2, 2, sums, 2)
        # Under γ=0.5 it demands 2·ceil(0.5·3) = 4 ≤ 4 → feasible.
        assert lemma2_feasible(0.5, 2, 2, sums, 2)

    def test_soundness_against_oracle(self, figure4_graph):
        # If the Lemma 2 condition fails for (S, k), no k-subset Z of
        # ext makes S ∪ Z a quasi-clique.
        from repro.core.degrees import compute_degrees

        gamma = 0.75
        s_set = {A, B}
        ext_set = {C, D, E, F}
        view = compute_degrees(figure4_graph, s_set, ext_set)
        sums = prefix_sums_desc(view.ext_degrees_sorted())
        sum_s = view.sum_s_degrees()
        for k in range(1, len(ext_set) + 1):
            if not lemma2_feasible(gamma, len(s_set), sum_s, sums, k):
                for z in itertools.combinations(sorted(ext_set), k):
                    assert not is_quasi_clique(
                        figure4_graph, s_set | set(z), gamma,
                        require_connected=False,
                    )


class TestParameterArithmetic:
    """The k = ceil(γ(τ_size−1)) values implied by the paper's Table 2 runs."""

    @pytest.mark.parametrize(
        "gamma,min_size,k",
        [
            (0.9, 30, 27),  # CX_GSE1730
            (0.8, 28, 22),  # CX_GSE10158 (ceil(0.8·27) = 22)
            (0.8, 10, 8),   # Ca-GrQc
            (0.9, 23, 20),  # Enron
            (0.8, 70, 56),  # DBLP (ceil(0.8·69) = 56)
            (0.5, 12, 6),   # Amazon
            (0.9, 22, 19),  # Hyves
            (0.9, 18, 16),  # YouTube
        ],
    )
    def test_kcore_thresholds(self, gamma, min_size, k):
        assert kcore_threshold(gamma, min_size) == k

    def test_youtube_claims(self):
        # "1,320 0.9-quasi-cliques ... at least 18 vertices, and the
        #  number reduces to 32 if we require at least 20" — encode the
        # parameter relationship (monotonicity of the size filter).
        assert kcore_threshold(0.9, 20) > kcore_threshold(0.9, 18)
