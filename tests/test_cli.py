"""Tests for the quasiclique-mine command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("# demo\n0 1\n1 2\n0 2\n2 3\n")
    return str(path)


class TestParser:
    def test_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_dataset_choices(self):
        args = build_parser().parse_args(["--dataset", "ca_grqc"])
        assert args.dataset == "ca_grqc"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--dataset", "friendster"])

    def test_graph_and_dataset_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["g.txt", "--dataset", "enron"])


class TestMain:
    def test_file_requires_gamma_and_min_size(self, graph_file, capsys):
        assert main([graph_file]) == 2
        assert "required" in capsys.readouterr().err

    def test_mines_triangle(self, graph_file, capsys):
        assert main([graph_file, "--gamma", "1.0", "--min-size", "3"]) == 0
        out = capsys.readouterr().out
        assert "results=1" in out
        assert "0 1 2" in out

    def test_serial_mode(self, graph_file, capsys):
        assert main([graph_file, "--gamma", "1.0", "--min-size", "3", "--serial"]) == 0
        assert "results=1" in capsys.readouterr().out

    def test_simulate_mode(self, graph_file, capsys):
        assert main(
            [graph_file, "--gamma", "1.0", "--min-size", "3", "--simulate", "--quiet"]
        ) == 0
        assert "virtual_makespan" in capsys.readouterr().out

    def test_output_file(self, graph_file, tmp_path, capsys):
        out_path = tmp_path / "res.txt"
        assert main(
            [graph_file, "--gamma", "1.0", "--min-size", "3",
             "--output", str(out_path), "--quiet"]
        ) == 0
        assert out_path.read_text().strip() == "0 1 2"

    def test_dataset_mode_defaults(self, capsys):
        assert main(["--dataset", "ca_grqc", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "gamma=0.8" in out
        assert "results=" in out

    def test_dataset_mode_overrides(self, capsys):
        assert main(
            ["--dataset", "ca_grqc", "--gamma", "0.9", "--min-size", "9", "--quiet"]
        ) == 0
        assert "gamma=0.9" in capsys.readouterr().out

    def test_quiet_suppresses_listing(self, graph_file, capsys):
        assert main([graph_file, "--gamma", "1.0", "--min-size", "3", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "0 1 2" not in out

    def test_decompose_and_threads_flags(self, graph_file, capsys):
        assert main(
            [graph_file, "--gamma", "1.0", "--min-size", "3",
             "--threads", "2", "--decompose", "size", "--tau-split", "2", "--quiet"]
        ) == 0
        assert "results=1" in capsys.readouterr().out


class TestExtendedModes:
    def test_stats_mode(self, capsys):
        assert main(["--dataset", "ca_grqc", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "degeneracy=" in out and "clustering=" in out

    def test_query_mode(self, graph_file, capsys):
        assert main([graph_file, "--gamma", "1.0", "--min-size", "3",
                     "--query", "0", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "query=[0]" in out and "results=1" in out

    def test_postprocess_mode(self, tmp_path, capsys):
        src = tmp_path / "raw.txt"
        dst = tmp_path / "max.txt"
        src.write_text("1 2\n1 2 3\n")
        assert main(["--postprocess", str(src), str(dst)]) == 0
        assert "read=2 kept=1" in capsys.readouterr().out
        data_lines = [
            line for line in dst.read_text().splitlines()
            if line and not line.startswith("#")
        ]
        assert data_lines == ["1 2 3"]

    def test_trace_engine_mode(self, graph_file, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.jsonl"
        assert main([graph_file, "--gamma", "1.0", "--min-size", "3",
                     "--trace", str(trace_path), "--quiet"]) == 0
        assert "trace_events=" in capsys.readouterr().out
        events = [json.loads(line) for line in trace_path.read_text().splitlines()]
        assert events
        assert {"spawn", "execute", "finish"} <= {e["kind"] for e in events}

    def test_trace_simulate_mode(self, graph_file, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        assert main([graph_file, "--gamma", "1.0", "--min-size", "3",
                     "--simulate", "--trace", str(trace_path), "--quiet"]) == 0
        assert "trace_events=" in capsys.readouterr().out
        assert trace_path.exists()

    def test_trace_rejects_serial(self, graph_file, capsys):
        assert main([graph_file, "--gamma", "1.0", "--min-size", "3",
                     "--serial", "--trace", "t.jsonl"]) == 2
        assert "--trace" in capsys.readouterr().err

    def test_trace_rejects_missing_directory(self, graph_file, tmp_path, capsys):
        bad = tmp_path / "missing" / "trace.jsonl"
        assert main([graph_file, "--gamma", "1.0", "--min-size", "3",
                     "--trace", str(bad)]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_checkpoint_mode(self, graph_file, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        assert main([graph_file, "--gamma", "1.0", "--min-size", "3",
                     "--checkpoint-dir", ckpt, "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "checkpoint=" in out and "results=1" in out
        import os
        assert os.path.exists(os.path.join(ckpt, "roots.journal"))


class TestRunSummary:
    def _out(self, **fields):
        from types import SimpleNamespace

        from repro.gthinker.metrics import EngineMetrics

        return SimpleNamespace(metrics=EngineMetrics(**fields))

    def test_backend_prefixes(self):
        from repro.cli import format_run_summary

        out = self._out(tasks_executed=5, tasks_decomposed=1, spill_batches=2)
        line = format_run_summary(out, "process", 4)
        assert line.startswith(" backend=process procs=4")
        assert "spills=2" in line and "workers_died" not in line
        line = format_run_summary(out, "cluster", 2)
        assert line.startswith(" backend=cluster workers=2")
        assert "steals=0" in line and "spills" not in line
        assert format_run_summary(out).startswith(" tasks=5")

    def test_fault_fields_appear_only_after_deaths(self):
        from repro.cli import format_run_summary

        out = self._out(workers_died=1, tasks_retried=3, tasks_quarantined=1,
                        stale_results_dropped=2)
        line = format_run_summary(out, "process", 2)
        assert "workers_died=1" in line
        assert "retried=3" in line and "quarantined=1" in line
        assert "stale_dropped=2" in line

    def test_metrics_json(self, graph_file, tmp_path, capsys):
        import json

        path = tmp_path / "metrics.json"
        assert main([graph_file, "--gamma", "1.0", "--min-size", "3",
                     "--metrics-json", str(path), "--quiet"]) == 0
        data = json.loads(path.read_text())
        assert data["tasks_executed"] >= 1
        assert data["results"] == 1
        assert "stale_results_dropped" in data
        assert isinstance(data["mining_stats"], dict)

    def test_metrics_json_rejects_serial(self, graph_file, capsys):
        assert main([graph_file, "--gamma", "1.0", "--min-size", "3",
                     "--serial", "--metrics-json", "m.json"]) == 2
        assert "--metrics-json" in capsys.readouterr().err


class TestBackendSelection:
    def test_backend_process(self, graph_file, capsys):
        assert main([graph_file, "--gamma", "1.0", "--min-size", "3",
                     "--backend", "process", "--num-procs", "2", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "backend=process procs=2" in out and "results=1" in out

    def test_backend_process_traces(self, graph_file, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        assert main([graph_file, "--gamma", "1.0", "--min-size", "3",
                     "--backend", "process", "--num-procs", "2",
                     "--trace", str(trace_path), "--quiet"]) == 0
        assert "trace_events=" in capsys.readouterr().out
        assert trace_path.exists()

    def test_backend_simulated_same_as_simulate(self, graph_file, capsys):
        assert main([graph_file, "--gamma", "1.0", "--min-size", "3",
                     "--backend", "simulated", "--quiet"]) == 0
        assert "virtual_makespan" in capsys.readouterr().out

    def test_backend_serial_and_threaded(self, graph_file, capsys):
        for backend in ("serial", "threaded"):
            assert main([graph_file, "--gamma", "1.0", "--min-size", "3",
                         "--backend", backend, "--quiet"]) == 0
            assert "results=1" in capsys.readouterr().out

    def test_unknown_backend_rejected(self, graph_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args([graph_file, "--backend", "mpi"])

    def test_simulate_conflicts_with_other_backend(self, graph_file, capsys):
        assert main([graph_file, "--gamma", "1.0", "--min-size", "3",
                     "--simulate", "--backend", "process"]) == 2
        assert "--simulate" in capsys.readouterr().err

    def test_backend_conflicts_with_serial_flag(self, graph_file, capsys):
        assert main([graph_file, "--gamma", "1.0", "--min-size", "3",
                     "--backend", "process", "--serial"]) == 2
        assert "--backend" in capsys.readouterr().err

    def test_backend_serial_rejects_thread_counts(self, graph_file, capsys):
        assert main([graph_file, "--gamma", "1.0", "--min-size", "3",
                     "--backend", "serial", "--threads", "4"]) == 2
        assert "serial" in capsys.readouterr().err
